// Parallel batch signature verification: determinism against the serial
// path, the thread pool underneath it, and the Blockchain Manager's
// batched commit path.
#include <gtest/gtest.h>

#include <atomic>

#include "bm/block_manager.hpp"
#include "chain/wallet.hpp"
#include "common/thread_pool.hpp"
#include "crypto/batch_verify.hpp"

namespace zlb {
namespace {

using namespace zlb::crypto;

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  common::ThreadPool pool(3);
  for (const std::size_t n : {0ul, 1ul, 2ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(BatchVerifier, MatchesSerialOnMixedBatch) {
  // A batch mixing valid signatures, wrong-digest, wrong-key, high-s
  // malleated, invalid pubkey bytes, and pre-rejected jobs must return
  // exactly what serial verify_digest returns, job by job.
  const auto alice = PrivateKey::from_seed(to_bytes("batch-alice"));
  const auto bob = PrivateKey::from_seed(to_bytes("batch-bob"));
  struct Case {
    PublicKey pub;
    Hash32 digest;
    Signature sig;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 24; ++i) {
    const PrivateKey& signer = (i % 2 == 0) ? alice : bob;
    Case c;
    c.digest = sha256(to_bytes("batch-msg-" + std::to_string(i)));
    c.sig = signer.sign_digest(c.digest);
    c.pub = signer.public_key();
    switch (i % 4) {
      case 1:  // wrong digest
        c.digest = sha256(to_bytes("other"));
        break;
      case 2:  // high-s twin
        c.sig.s = sub_mod(U256(), c.sig.s, curve().n);
        break;
      case 3:  // wrong key
        c.pub = (i % 2 == 0) ? bob.public_key() : alice.public_key();
        break;
      default:
        break;
    }
    cases.push_back(c);
  }
  BatchVerifier batch;
  std::vector<std::uint8_t> expected;
  for (const Case& c : cases) {
    batch.add(c.pub, c.digest, c.sig);
    expected.push_back(verify_digest(c.pub, c.digest, c.sig) ? 1 : 0);
  }
  batch.add_invalid();
  expected.push_back(0);
  const auto got = batch.verify_all();
  EXPECT_EQ(got, expected);
  // Valid jobs exist and invalid jobs exist — the batch is a real mix.
  EXPECT_NE(std::count(expected.begin(), expected.end(), 1), 0);
  EXPECT_NE(std::count(expected.begin(), expected.end(), 0), 0);
  // verify_all drains the queue; a rerun over re-added jobs is
  // identical (determinism across runs and pool schedules).
  EXPECT_EQ(batch.size(), 0u);
  for (const Case& c : cases) batch.add(c.pub, c.digest, c.sig);
  batch.add_invalid();
  EXPECT_EQ(batch.verify_all(), expected);
}

TEST(BatchVerifier, AffineJobsMatchCompressedJobs) {
  const auto key = PrivateKey::from_seed(to_bytes("batch-affine"));
  const auto pub = key.public_key();
  const auto q = decompress(BytesView(pub.data.data(), 33));
  ASSERT_TRUE(q.has_value());
  BatchVerifier batch;
  for (int i = 0; i < 8; ++i) {
    const Hash32 digest = sha256(to_bytes("affine-" + std::to_string(i)));
    Signature sig = key.sign_digest(digest);
    if (i % 2 == 1) sig.r = add_mod(sig.r, U256(1), curve().n);  // corrupt
    batch.add(pub, digest, sig);
    batch.add(*q, digest, sig);
  }
  const auto got = batch.verify_all();
  ASSERT_EQ(got.size(), 16u);
  for (std::size_t i = 0; i < got.size(); i += 2) {
    EXPECT_EQ(got[i], got[i + 1]);
    EXPECT_EQ(got[i], (i / 2) % 2 == 0 ? 1 : 0);
  }
}

TEST(BatchVerifier, EmptyBatch) {
  BatchVerifier batch;
  EXPECT_TRUE(batch.verify_all().empty());
}

class BlockCommitFixture : public ::testing::Test {
 protected:
  BlockCommitFixture()
      : alice(to_bytes("bm-alice")),
        bob(to_bytes("bm-bob")),
        carol(to_bytes("bm-carol")) {}

  chain::Wallet alice, bob, carol;
};

TEST_F(BlockCommitFixture, BatchedCommitMatchesSerialApply) {
  // Two managers over identical genesis: one commits a block through
  // the batched path, the reference applies the same transactions
  // serially with inline signature checks. Final state must match
  // exactly — same acceptance set, same balances.
  bm::BlockManager batched;
  chain::UtxoSet serial;
  for (int i = 0; i < 4; ++i) {
    batched.utxos().mint(alice.address(), 500);
  }
  for (int i = 0; i < 4; ++i) {
    serial.mint(alice.address(), 500);
  }
  const auto coins = batched.utxos().owned_by(alice.address());
  chain::Block block;
  // tx0: valid payment.
  block.txs.push_back(alice.pay_from({coins[0]}, bob.address(), 500));
  // tx1: high-s malleated input signature — must be skipped.
  {
    chain::Transaction tx = alice.pay_from({coins[1]}, carol.address(), 500);
    const auto sig =
        Signature::from_bytes(BytesView(tx.inputs[0].sig.data(), 64));
    tx.inputs[0].sig =
        Signature{sig->r, sub_mod(U256(), sig->s, curve().n)}.to_bytes();
    block.txs.push_back(tx);
  }
  // tx2: tampered signature byte — must be skipped.
  {
    chain::Transaction tx = alice.pay_from({coins[2]}, carol.address(), 500);
    tx.inputs[0].sig[5] ^= 0x40;
    block.txs.push_back(tx);
  }
  // tx3: valid multi-output payment.
  block.txs.push_back(alice.pay_from({coins[3]}, bob.address(), 300));
  const std::size_t applied = batched.commit_block(block);
  std::size_t expected_applied = 0;
  for (const auto& tx : block.txs) {
    if (serial.apply(tx, /*verify_sigs=*/true) == chain::TxCheck::kOk) {
      ++expected_applied;
    }
  }
  EXPECT_EQ(applied, expected_applied);
  EXPECT_EQ(applied, 2u);
  for (const auto& who :
       {alice.address(), bob.address(), carol.address()}) {
    EXPECT_EQ(batched.utxos().balance(who), serial.balance(who));
  }
  EXPECT_EQ(batched.utxos().size(), serial.size());
  // The malleated and tampered transactions are unknown to the manager.
  EXPECT_TRUE(batched.knows_tx(block.txs[0].id()));
  EXPECT_FALSE(batched.knows_tx(block.txs[1].id()));
  EXPECT_FALSE(batched.knows_tx(block.txs[2].id()));
  EXPECT_TRUE(batched.knows_tx(block.txs[3].id()));
}

TEST_F(BlockCommitFixture, IntraBlockChainStillSignatureChecked) {
  // tx1 spends an output tx0 creates in the same block. The batch
  // pre-filter cannot attribute tx1's input to a pre-block UTXO, but
  // its signature must still be verified — a forged chained spend
  // sneaking past batching would be a signature bypass.
  const auto make_block = [&](bool tamper) {
    bm::BlockManager manager;
    manager.utxos().mint(alice.address(), 500);
    const auto coins = manager.utxos().owned_by(alice.address());
    chain::Block block;
    block.txs.push_back(alice.pay_from(coins, bob.address(), 500));
    // Bob chains off tx0's first output (the 500 to him).
    chain::Transaction chained = bob.pay_from(
        {{chain::OutPoint{block.txs[0].id(), 0},
          chain::TxOut{500, bob.address()}}},
        carol.address(), 500);
    if (tamper) chained.inputs[0].sig[7] ^= 0x20;
    block.txs.push_back(chained);
    const std::size_t applied = manager.commit_block(block);
    return std::make_pair(applied, manager.utxos().balance(carol.address()));
  };
  const auto [ok_applied, ok_carol] = make_block(false);
  EXPECT_EQ(ok_applied, 2u);
  EXPECT_EQ(ok_carol, 500);
  const auto [bad_applied, bad_carol] = make_block(true);
  EXPECT_EQ(bad_applied, 1u);  // tx0 lands, forged chain does not
  EXPECT_EQ(bad_carol, 0);
}

TEST_F(BlockCommitFixture, DoomedInputsSkipCryptoButMatchSerial) {
  // Transactions spending nonexistent outpoints or carrying a
  // wrong-owner key are rejected identically to the serial path (the
  // batch path just skips the wasted signature work).
  bm::BlockManager manager;
  chain::UtxoSet serial;
  manager.utxos().mint(alice.address(), 100);
  serial.mint(alice.address(), 100);
  const auto coins = manager.utxos().owned_by(alice.address());
  chain::Block block;
  // Missing input: spends an outpoint that never existed.
  block.txs.push_back(bob.pay_from(
      {{chain::OutPoint{crypto::sha256(to_bytes("nope")), 0},
        chain::TxOut{50, bob.address()}}},
      carol.address(), 50));
  // Wrong owner: bob spends alice's coin with his own key.
  block.txs.push_back(bob.pay_from(coins, carol.address(), 100));
  // Valid spend of the same coin.
  block.txs.push_back(alice.pay_from(coins, bob.address(), 100));
  const std::size_t applied = manager.commit_block(block);
  std::size_t expected = 0;
  for (const auto& tx : block.txs) {
    if (serial.apply(tx, /*verify_sigs=*/true) == chain::TxCheck::kOk) {
      ++expected;
    }
  }
  EXPECT_EQ(applied, expected);
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(manager.utxos().balance(bob.address()), serial.balance(bob.address()));
  EXPECT_EQ(manager.utxos().balance(carol.address()), 0);
  // The shared memo holds only the legitimate owner's key: garbage and
  // unattributable keys must not grow it.
  EXPECT_EQ(manager.utxos().pubkey_cache().size(), 1u);
}

TEST_F(BlockCommitFixture, CommitWithoutSigCheckStillApplies) {
  bm::BlockManager manager;
  manager.utxos().mint(alice.address(), 100);
  const auto coins = manager.utxos().owned_by(alice.address());
  chain::Block block;
  chain::Transaction tx = alice.pay_from(coins, bob.address(), 100);
  tx.inputs[0].sig[5] ^= 0x40;  // bad signature, but checks disabled
  block.txs.push_back(tx);
  EXPECT_EQ(manager.commit_block(block, /*verify_sigs=*/false), 1u);
}

}  // namespace
}  // namespace zlb
