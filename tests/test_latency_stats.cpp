// Statistical validation of the delay families behind Figs. 4-6: the
// simulator's conclusions about disagreement counts are only as good as
// its latency samplers, so we check their moments and structure, not
// just that they return something positive.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/latency.hpp"

namespace zlb::sim {
namespace {

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
  SimTime min = 0;
  SimTime max = 0;
};

Moments sample_moments(const LatencyModel& model, ReplicaId from, ReplicaId to,
                       int count, std::uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0;
  double sum2 = 0.0;
  Moments m;
  m.min = std::numeric_limits<SimTime>::max();
  for (int i = 0; i < count; ++i) {
    const SimTime s = model.sample(from, to, rng);
    sum += static_cast<double>(s);
    sum2 += static_cast<double>(s) * static_cast<double>(s);
    m.min = std::min(m.min, s);
    m.max = std::max(m.max, s);
  }
  m.mean = sum / count;
  m.stddev = std::sqrt(std::max(0.0, sum2 / count - m.mean * m.mean));
  return m;
}

class UniformMeans : public ::testing::TestWithParam<SimTime> {};

TEST_P(UniformMeans, MeanAndSupportMatchTheSpec) {
  const SimTime mean = GetParam();
  const UniformLatency model(mean);
  const Moments m = sample_moments(model, 0, 1, 20000, 11);
  // Uniform on [mean/2, 3*mean/2]: mean = mean, sd = mean/sqrt(12).
  EXPECT_NEAR(m.mean, static_cast<double>(mean), 0.02 * mean);
  EXPECT_NEAR(m.stddev, mean / std::sqrt(12.0), 0.05 * mean);
  EXPECT_GE(m.min, mean / 2);
  EXPECT_LE(m.max, mean + mean / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(Means, UniformMeans,
                         ::testing::Values(ms(200), ms(500), ms(1000),
                                           seconds(5), seconds(10)));

TEST(GammaLatency, MeanTracksParameterAndFloorHolds) {
  const double shape = 2.0;
  const SimTime mean = ms(120);
  const SimTime floor = ms(10);
  const GammaLatency model(shape, mean, floor);
  const Moments m = sample_moments(model, 0, 1, 40000, 23);
  EXPECT_GE(m.min, floor);
  // The floor clips the left tail, so the observed mean sits at or
  // slightly above floor + mean.
  EXPECT_GT(m.mean, static_cast<double>(mean));
  EXPECT_LT(m.mean, static_cast<double>(mean + floor) * 1.15);
  // Gamma(k=2) has sd = mean/sqrt(2); allow generous tolerance.
  EXPECT_NEAR(m.stddev, mean / std::sqrt(shape), 0.2 * mean);
}

TEST(GammaLatency, HeavierTailThanUniform) {
  const GammaLatency gamma(2.0, ms(200), ms(1));
  const UniformLatency uniform(ms(200));
  const Moments mg = sample_moments(gamma, 0, 1, 40000, 7);
  const Moments mu = sample_moments(uniform, 0, 1, 40000, 7);
  EXPECT_GT(mg.max, mu.max) << "Gamma must produce tail samples";
}

TEST(AwsLatency, IntraRegionIsFastest) {
  const AwsLatency model;
  // Replicas 0 and 5 share region 0; 0 and 3 are California-Frankfurt.
  const Moments same = sample_moments(model, 0, 5, 4000, 3);
  const Moments cross = sample_moments(model, 0, 3, 4000, 3);
  EXPECT_LT(same.mean * 5, cross.mean)
      << "inter-continent must dominate intra-region";
}

TEST(AwsLatency, RoughlySymmetricPerPair) {
  const AwsLatency model;
  for (ReplicaId a = 0; a < 5; ++a) {
    for (ReplicaId b = 0; b < 5; ++b) {
      const Moments ab = sample_moments(model, a, b, 2000, 5);
      const Moments ba = sample_moments(model, b, a, 2000, 5);
      EXPECT_NEAR(ab.mean, ba.mean, 0.1 * std::max(ab.mean, 1.0))
          << "pair " << a << "," << b;
    }
  }
}

TEST(AwsLatency, RegionAssignmentIsRoundRobin) {
  EXPECT_EQ(AwsLatency::region_of(0), 0);
  EXPECT_EQ(AwsLatency::region_of(7), 2);
  EXPECT_EQ(AwsLatency::region_of(90), 0);
}

TEST(PartitionOverlay, OnlyCrossHonestPairsPayTheInjectedDelay) {
  auto base = std::make_shared<FixedLatency>(ms(1));
  auto attack = std::make_shared<FixedLatency>(ms(500));
  // Replicas 0,1 -> partition 0; 2,3 -> partition 1; 4 deceitful (-1).
  const PartitionOverlay overlay(base, attack, {0, 0, 1, 1, -1});
  Rng rng(1);
  EXPECT_EQ(overlay.sample(0, 1, rng), ms(1));    // same partition
  EXPECT_EQ(overlay.sample(0, 2, rng), ms(501));  // cross partition
  EXPECT_EQ(overlay.sample(2, 0, rng), ms(501));
  EXPECT_EQ(overlay.sample(4, 0, rng), ms(1));    // deceitful talks fast
  EXPECT_EQ(overlay.sample(0, 4, rng), ms(1));
  EXPECT_EQ(overlay.sample(4, 4, rng), ms(1));
}

TEST(PartitionOverlay, ScalePhenomenonPrecondition) {
  // §5.2's scalability argument: with the AWS matrix, the attacker's
  // *own* coordination pays WAN latency as n grows. Check the mean
  // colluder-to-colluder delay grows when colluders span regions.
  const AwsLatency model;
  const Moments near = sample_moments(model, 0, 5, 3000, 9);    // same region
  const Moments far = sample_moments(model, 0, 8, 3000, 9);     // US-EU
  EXPECT_GT(far.mean, near.mean * 3);
}

}  // namespace
}  // namespace zlb::sim
