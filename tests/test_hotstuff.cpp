// HotStuff baseline sanity: chained views commit with the three-chain
// rule, throughput is positive, and the leader bottleneck shows up as
// decreasing per-replica throughput with n.
#include <gtest/gtest.h>

#include "baselines/hotstuff.hpp"

namespace zlb::baselines {
namespace {

HotStuffConfig small_config(std::uint64_t views) {
  HotStuffConfig cfg;
  cfg.batch_tx_count = 100;
  cfg.max_views = views;
  return cfg;
}

TEST(HotStuff, CommitsThreeChain) {
  const auto res = run_hotstuff(4, small_config(10), sim::NetConfig{},
                                std::make_shared<sim::FixedLatency>(ms(5)), 1);
  // Views 3..10 commit blocks of views 1..8.
  EXPECT_EQ(res.committed_txs, 8u * 100u);
  EXPECT_GT(res.tx_per_sec, 0.0);
}

TEST(HotStuff, AllReplicasAgreeOnCommitCount) {
  sim::Simulator sim;
  sim::Network net(sim, std::make_shared<sim::FixedLatency>(ms(2)),
                   sim::NetConfig{}, 3);
  crypto::SimScheme scheme(64, 3);
  std::vector<ReplicaId> committee{0, 1, 2, 3, 4, 5, 6};
  std::vector<std::unique_ptr<HotStuffReplica>> replicas;
  for (ReplicaId id : committee) {
    replicas.push_back(std::make_unique<HotStuffReplica>(
        sim, net, scheme, id, committee, small_config(12)));
  }
  for (auto& r : replicas) r->start();
  sim.run_until();
  const auto blocks = replicas[0]->metrics().committed_blocks;
  EXPECT_GT(blocks, 0u);
  for (auto& r : replicas) {
    EXPECT_EQ(r->metrics().committed_blocks, blocks);
  }
}

class HotStuffScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HotStuffScale, Terminates) {
  const auto res =
      run_hotstuff(GetParam(), small_config(8), sim::NetConfig{},
                   std::make_shared<sim::AwsLatency>(), 7);
  EXPECT_GT(res.committed_txs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HotStuffScale,
                         ::testing::Values(4, 10, 31, 52));

TEST(HotStuff, LeaderBandwidthBottleneckGrowsWithN) {
  // One proposal per instance: bigger committees mean the leader pushes
  // the batch to more replicas, so throughput decreases with n (this is
  // what ZLB overtakes, Fig. 3).
  HotStuffConfig cfg;
  cfg.batch_tx_count = 10000;
  cfg.digest_bytes = 400;  // full payload through the leader
  cfg.max_views = 10;
  const auto small = run_hotstuff(10, cfg, sim::NetConfig{},
                                  std::make_shared<sim::AwsLatency>(), 1);
  const auto big = run_hotstuff(60, cfg, sim::NetConfig{},
                                std::make_shared<sim::AwsLatency>(), 1);
  EXPECT_GT(small.tx_per_sec, big.tx_per_sec);
}

TEST(HotStuff, RotatingLeaderTolerance) {
  // Views complete under every leader in the rotation (no stuck view).
  const auto res = run_hotstuff(7, small_config(21), sim::NetConfig{},
                                std::make_shared<sim::FixedLatency>(ms(1)), 9);
  EXPECT_EQ(res.committed_txs, (21u - 2u) * 100u);
}

}  // namespace
}  // namespace zlb::baselines
