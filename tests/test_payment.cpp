// Zero-loss payment analysis (§B, Theorem .5): branch bound, g(·),
// expected gain/punishment, minimum finalization blockdepth — checked
// against the paper's own worked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "payment/zero_loss.hpp"

namespace zlb::payment {
namespace {

TEST(MaxBranches, PaperValues) {
  // δ = 0.5 -> a = 3 (the paper's example).
  EXPECT_EQ(max_branches(100, 50, 0), 3);
  // δ = 0.6 -> a = 6.
  EXPECT_EQ(max_branches(100, 60, 0), 6);
  // δ = 0.66 -> a = 51 at n = 100 (34 honest over a 2/3 margin).
  EXPECT_EQ(max_branches(100, 66, 0), 51);
  // Below n/3 deceitful: no fork possible.
  EXPECT_EQ(max_branches(100, 20, 0), 1);
}

TEST(MaxBranches, BenignFaultsReduceBranches) {
  // q benign faults do not help forking: a depends on d = f − q.
  EXPECT_EQ(max_branches(100, 60, 10), max_branches(100, 50, 0));
}

TEST(MaxBranches, DegenerateDenominator) {
  // d >= ⌈2n/3⌉: the bound degenerates; we cap at n.
  EXPECT_EQ(max_branches(9, 7, 0), 9);
}

TEST(GValue, SignMatchesZeroLossBoundary) {
  // g >= 0 <=> ρ^{m+1} <= c = b/(a−1+b).
  const int a = 3;
  const double b = 0.1;
  const double c = b / (a - 1 + b);
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (int m : {0, 1, 4, 10, 30}) {
      const double lhs = g_value(a, b, rho, m);
      const bool zero_loss = std::pow(rho, m + 1) <= c + 1e-12;
      EXPECT_EQ(lhs >= -1e-9, zero_loss) << "rho=" << rho << " m=" << m;
    }
  }
}

TEST(Flux, GainPlusFluxEqualsPunishment) {
  const double gain = 1e6;
  const double flux = deposit_flux(3, 0.1, 0.55, 4, gain);
  EXPECT_NEAR(flux + expected_gain(3, 0.55, 4, gain),
              expected_punishment(0.1, 0.55, 4, gain), 1e-6);
}

TEST(MinBlockdepth, PaperExampleDelta05) {
  // δ = 0.5 => a = 3; D = G/10 => b = 0.1. The paper quotes m = 4 for
  // ρ = 0.55 and m = 28 for ρ = 0.9 (rounding log(c)/log(ρ) − 1 ≈ 4.09
  // and 27.9 down/up respectively); the exact smallest m with g >= 0 is
  // 5 and 28. We implement the exact criterion.
  EXPECT_EQ(min_blockdepth(3, 0.1, 0.55), 5);
  EXPECT_EQ(min_blockdepth(3, 0.1, 0.9), 28);
}

TEST(MinBlockdepth, GrowsWithDeceitfulRatio) {
  // δ = 0.6 -> a = 6 -> m = 37 (paper); δ = 0.66 -> a = 51 -> m = 58.
  EXPECT_EQ(min_blockdepth(max_branches(100, 60, 0), 0.1, 0.9), 37);
  EXPECT_EQ(min_blockdepth(max_branches(100, 66, 0), 0.1, 0.9), 59);
  // Monotonicity in a (more branches need deeper finalization).
  int prev = 0;
  for (int a = 2; a <= 51; ++a) {
    const int m = min_blockdepth(a, 0.1, 0.9);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(MinBlockdepth, Boundaries) {
  EXPECT_EQ(min_blockdepth(1, 0.1, 0.99), 0);   // no fork possible
  EXPECT_EQ(min_blockdepth(3, 0.1, 0.0), 0);    // attacks never succeed
  EXPECT_EQ(min_blockdepth(3, 0.1, 1.0), -1);   // attacks always succeed
  EXPECT_EQ(min_blockdepth(3, 10.0, 0.5), 0);   // huge deposit: depth 0
}

TEST(MinBlockdepth, ResultActuallySatisfiesG) {
  // Property sweep: the returned depth is the smallest zero-loss depth.
  for (int a : {2, 3, 6, 13, 51}) {
    for (double b : {0.05, 0.1, 0.5, 1.0}) {
      for (double rho : {0.3, 0.55, 0.75, 0.9, 0.95}) {
        const int m = min_blockdepth(a, b, rho);
        ASSERT_GE(m, 0);
        EXPECT_GE(g_value(a, b, rho, m), -1e-9)
            << "a=" << a << " b=" << b << " rho=" << rho;
        if (m > 0) {
          EXPECT_LT(g_value(a, b, rho, m - 1), 0.0)
              << "a=" << a << " b=" << b << " rho=" << rho;
        }
      }
    }
  }
}

TEST(MaxToleratedRho, InverseOfMinBlockdepth) {
  const int a = 3;
  const double b = 0.1;
  for (int m : {1, 4, 10, 28}) {
    const double rho = max_tolerated_rho(a, b, m);
    // At the tolerated ρ, depth m is (just) enough.
    EXPECT_GE(g_value(a, b, rho - 1e-9, m), -1e-9);
    EXPECT_LT(g_value(a, b, rho + 1e-3, m), 0.0);
  }
}

TEST(PerReplicaDeposit, CoalitionHoldsFullDeposit) {
  // Any coalition has >= ⌈n/3⌉ replicas, so n/3 × (3bG/n) = bG = D.
  const double gain = 3'000'000.0;
  const double b = 0.1;
  const int n = 90;
  const double per_replica = per_replica_deposit(b, gain, n);
  EXPECT_NEAR(per_replica * (n / 3.0), b * gain, 1e-6);
}

}  // namespace
}  // namespace zlb::payment
