// Robustness property sweep: every wire decoder must reject arbitrary
// byte garbage with DecodeError (never crash, never loop) — replicas
// feed network input straight into these.
#include <gtest/gtest.h>

#include "asmr/payload.hpp"
#include "bm/block_manager.hpp"
#include "chain/block.hpp"
#include "chain/journal.hpp"
#include "chain/wallet.hpp"
#include "consensus/messages.hpp"
#include "consensus/pof.hpp"
#include "sync/frames.hpp"
#include "sync/snapshot.hpp"

namespace zlb {
namespace {

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

template <typename Fn>
void expect_no_crash(Fn&& decode, const Bytes& data) {
  try {
    decode(BytesView(data.data(), data.size()));
  } catch (const DecodeError&) {
  } catch (const std::invalid_argument&) {
  }
  // Any other exception type (or a crash) fails the test.
}

TEST_P(DecoderFuzz, AllDecodersRejectGarbageGracefully) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes data = random_bytes(rng, 300);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)consensus::SignedVote::decode(r);
        },
        data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)consensus::ProposalMsg::decode(r);
        },
        data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)consensus::DecisionMsg::decode(r);
        },
        data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)consensus::EvidenceMsg::decode(r);
        },
        data);
    expect_no_crash([](BytesView d) { (void)consensus::decode_pofs(d); },
                    data);
    expect_no_crash([](BytesView d) { (void)asmr::BatchPayload::decode(d); },
                    data);
    expect_no_crash(
        [](BytesView d) { (void)asmr::decode_replica_ids(d); }, data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)chain::Transaction::deserialize(r);
        },
        data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)chain::Block::deserialize(r);
        },
        data);
    // State-sync codecs (snapshot images and transfer frames) take
    // network input on the catch-up path.
    expect_no_crash([](BytesView d) { (void)sync::Snapshot::decode(d); },
                    data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)sync::SnapshotManifest::decode(r);
        },
        data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)sync::ChunkRequest::decode(r);
        },
        data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)sync::SnapshotChunk::decode(r);
        },
        data);
    // Epoch-tagged reconfiguration codecs (announcements, exclusion
    // claims, journal boundary records) take network/disk input too.
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)consensus::EpochAnnounceMsg::decode(r);
        },
        data);
    expect_no_crash(
        [](BytesView d) { (void)consensus::ExclusionClaim::decode(d); },
        data);
    expect_no_crash(
        [](BytesView d) {
          Reader r(d);
          (void)chain::EpochRecord::deserialize(r);
        },
        data);
  }
}

TEST_P(DecoderFuzz, EpochTaggedFramesRoundtripAndRejectTruncation) {
  Rng rng(GetParam() * 40503 + 17);
  crypto::SimScheme scheme(64);

  // EpochAnnounceMsg: roundtrip at random shapes, truncation at every
  // cut either throws or yields a prefix that re-encodes differently —
  // and an epoch flip always breaks the signature (the epoch is in the
  // signing bytes, not just the envelope).
  for (int i = 0; i < 200; ++i) {
    consensus::EpochAnnounceMsg m;
    m.sender = static_cast<ReplicaId>(rng.next_below(64));
    m.epoch = static_cast<std::uint32_t>(1 + rng.next_below(8));
    m.start_index = rng.next_below(1000);
    const std::size_t nm = 1 + rng.next_below(12);
    for (std::size_t j = 0; j < nm; ++j) {
      m.members.push_back(static_cast<ReplicaId>(rng.next_below(64)));
    }
    for (std::size_t j = 0; j < rng.next_below(4); ++j) {
      m.excluded.push_back(static_cast<ReplicaId>(rng.next_below(64)));
    }
    const Bytes sb = m.signing_bytes();
    m.signature = scheme.sign(m.sender, BytesView(sb.data(), sb.size()));
    Writer w;
    m.encode(w);
    const Bytes wire = w.take();

    Reader r(BytesView(wire.data(), wire.size()));
    const auto back = consensus::EpochAnnounceMsg::decode(r);
    r.expect_done();
    EXPECT_EQ(back.epoch, m.epoch);
    EXPECT_EQ(back.start_index, m.start_index);
    EXPECT_EQ(back.members, m.members);
    EXPECT_EQ(back.excluded, m.excluded);
    EXPECT_EQ(back.content_digest(), m.content_digest());

    // Epoch mismatch rejection: relabelling the announced epoch (or its
    // boundary) invalidates the signature.
    for (auto mutate : {0, 1}) {
      auto forged = back;
      if (mutate == 0) {
        forged.epoch += 1;
      } else {
        forged.start_index += 1;
      }
      const Bytes fb = forged.signing_bytes();
      EXPECT_FALSE(scheme.verify(
          forged.sender, BytesView(fb.data(), fb.size()),
          BytesView(forged.signature.data(), forged.signature.size())));
    }

    const std::size_t cut = 1 + rng.next_below(wire.size() - 1);
    expect_no_crash(
        [](BytesView d) {
          Reader rr(d);
          (void)consensus::EpochAnnounceMsg::decode(rr);
        },
        Bytes(wire.begin(), wire.begin() + static_cast<long>(cut)));
  }

  // SnapshotManifest: the epoch rides in the signing bytes, so a
  // cross-epoch relabelling of an otherwise valid manifest must fail
  // signature verification.
  {
    sync::SnapshotManifest m;
    m.server = 4;
    m.epoch = 2;
    m.upto = 320;
    m.chunk_size = 64;
    m.chunk_count = 3;
    m.total_bytes = 130;
    m.root = crypto::sha256(to_bytes("epoch-root"));
    const Bytes sb = m.signing_bytes();
    m.signature = scheme.sign(m.server, BytesView(sb.data(), sb.size()));
    Writer w;
    m.encode(w);
    Reader r(BytesView(w.data().data(), w.data().size()));
    const auto back = sync::SnapshotManifest::decode(r);
    EXPECT_EQ(back.epoch, 2u);
    const Bytes vb = back.signing_bytes();
    EXPECT_TRUE(scheme.verify(back.server, BytesView(vb.data(), vb.size()),
                              BytesView(back.signature.data(),
                                        back.signature.size())));
    auto forged = back;
    forged.epoch = 0;  // claim the same state belongs to epoch 0
    const Bytes fb = forged.signing_bytes();
    EXPECT_FALSE(scheme.verify(forged.server, BytesView(fb.data(), fb.size()),
                               BytesView(forged.signature.data(),
                                         forged.signature.size())));
  }

  // ExclusionClaim + EpochRecord: strict roundtrips; truncations throw.
  for (int i = 0; i < 100; ++i) {
    consensus::ExclusionClaim claim;
    claim.ceiling = rng.next_below(5000);
    const Bytes claim_wire = claim.encode();
    EXPECT_EQ(consensus::ExclusionClaim::decode(
                  BytesView(claim_wire.data(), claim_wire.size()))
                  .ceiling,
              claim.ceiling);

    chain::EpochRecord rec;
    rec.epoch = static_cast<std::uint32_t>(rng.next_below(16));
    rec.start_index = rng.next_below(4096);
    const std::size_t nm = 1 + rng.next_below(20);
    for (std::size_t j = 0; j < nm; ++j) {
      rec.members.push_back(static_cast<ReplicaId>(rng.next_below(256)));
    }
    const Bytes rec_wire = rec.serialize();
    Reader rr(BytesView(rec_wire.data(), rec_wire.size()));
    EXPECT_EQ(chain::EpochRecord::deserialize(rr), rec);
    const std::size_t cut = rng.next_below(rec_wire.size());
    expect_no_crash(
        [](BytesView d) {
          Reader r2(d);
          (void)chain::EpochRecord::deserialize(r2);
        },
        Bytes(rec_wire.begin(), rec_wire.begin() + static_cast<long>(cut)));
  }
}

TEST_P(DecoderFuzz, MutatedSnapshotNeverCrashesAndNeverLies) {
  // Start from a VALID snapshot encoding and abuse it: truncation at
  // every boundary class, bit flips, and length-prefix inflation must
  // either decode to exactly the same canonical bytes or throw — no
  // crash, no over-read, no silently different state.
  Rng rng(GetParam() * 8191 + 3);
  bm::BlockManager bm;
  chain::Wallet alice(to_bytes("fuzz-alice"));
  chain::Wallet bob(to_bytes("fuzz-bob"));
  for (int i = 0; i < 8; ++i) {
    bm.utxos().mint(alice.address(), 100 + i);
  }
  chain::Block b;
  b.index = 0;
  const auto tx = alice.pay(bm.utxos(), bob.address(), 50);
  ASSERT_TRUE(tx.has_value());
  b.txs.push_back(*tx);
  bm.commit_block(b);
  const Bytes wire = bm.snapshot(7).encode();

  for (int i = 0; i < 1500; ++i) {
    Bytes mutated = wire;
    switch (rng.next_below(3)) {
      case 0:  // truncate
        mutated.resize(rng.next_below(mutated.size()));
        break;
      case 1: {  // bit flips
        const std::size_t flips = 1 + rng.next_below(4);
        for (std::size_t f = 0; f < flips; ++f) {
          mutated[rng.next_below(mutated.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      }
      default:  // garbage tail (trailing bytes must be rejected)
        for (std::size_t n = rng.next_below(16) + 1; n > 0; --n) {
          mutated.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        break;
    }
    try {
      const auto snap =
          sync::Snapshot::decode(BytesView(mutated.data(), mutated.size()));
      EXPECT_EQ(snap.encode(), mutated)
          << "accepted a non-canonical mutation";
    } catch (const DecodeError&) {
      // expected for nearly every mutation
    }
  }
}

TEST_P(DecoderFuzz, MutatedSyncFramesDontCrash) {
  Rng rng(GetParam() * 524287 + 11);
  sync::SnapshotManifest m;
  m.server = 2;
  m.upto = 99;
  m.chunk_size = 64;
  m.chunk_count = 3;
  m.total_bytes = 130;
  m.root = crypto::sha256(to_bytes("root"));
  m.signature = to_bytes("sig-bytes-of-some-length");
  Writer mw;
  m.encode(mw);
  const Bytes manifest_wire = mw.take();

  sync::SnapshotChunk c;
  c.upto = 99;
  c.index = 1;
  c.data = to_bytes("chunk-payload-bytes");
  c.proof = {crypto::sha256(to_bytes("p0")), crypto::sha256(to_bytes("p1"))};
  Writer cw;
  c.encode(cw);
  const Bytes chunk_wire = cw.take();

  for (int i = 0; i < 2000; ++i) {
    for (const Bytes* wire : {&manifest_wire, &chunk_wire}) {
      Bytes mutated = *wire;
      const std::size_t flips = 1 + rng.next_below(5);
      for (std::size_t f = 0; f < flips; ++f) {
        mutated[rng.next_below(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      if (rng.next_below(4) == 0) {
        mutated.resize(rng.next_below(mutated.size() + 1));
      }
      try {
        Reader r(BytesView(mutated.data(), mutated.size()));
        if (wire == &manifest_wire) {
          (void)sync::SnapshotManifest::decode(r);
        } else {
          (void)sync::SnapshotChunk::decode(r);
        }
      } catch (const DecodeError&) {
      }
    }
  }
}

TEST_P(DecoderFuzz, BitflippedValidMessagesDontCrash) {
  Rng rng(GetParam() * 131 + 7);
  crypto::SimScheme scheme(64);
  consensus::SignedVote vote;
  vote.signer = 3;
  vote.body = consensus::VoteBody{consensus::InstanceKey{1,
                                  consensus::InstanceKind::kExclusion, 5},
                                  2, 1, consensus::VoteType::kAux, Bytes{1}};
  const Bytes sb = vote.body.signing_bytes();
  vote.signature = scheme.sign(3, BytesView(sb.data(), sb.size()));
  const Bytes wire = consensus::encode_vote_msg(vote);
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = wire;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    expect_no_crash(
        [](BytesView d) {
          if (d.empty()) return;
          Reader r(d.subspan(1));
          (void)consensus::SignedVote::decode(r);
        },
        mutated);
  }
}

TEST_P(DecoderFuzz, RoundtripSurvivesReencoding) {
  // Decode(encode(x)) == x for randomly generated valid votes.
  Rng rng(GetParam() * 977 + 13);
  crypto::SimScheme scheme(64);
  for (int i = 0; i < 500; ++i) {
    consensus::SignedVote v;
    v.signer = static_cast<ReplicaId>(rng.next_below(1000));
    v.body.key = consensus::InstanceKey{
        static_cast<std::uint32_t>(rng.next_below(5)),
        static_cast<consensus::InstanceKind>(rng.next_below(3)),
        rng.next_below(100)};
    v.body.slot = static_cast<std::uint32_t>(rng.next_below(128));
    v.body.round = static_cast<std::uint32_t>(rng.next_below(8));
    v.body.type = static_cast<consensus::VoteType>(rng.next_below(5));
    v.body.value = random_bytes(rng, 32);
    const Bytes sb = v.body.signing_bytes();
    v.signature = scheme.sign(v.signer, BytesView(sb.data(), sb.size()));
    Writer w;
    v.encode(w);
    Reader r(BytesView(w.data().data(), w.data().size()));
    const auto back = consensus::SignedVote::decode(r);
    r.expect_done();
    EXPECT_EQ(back, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace zlb
