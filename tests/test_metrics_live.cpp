// The metrics exposition path end to end: a real HTTP GET against the
// MetricsServer riding a node's event loop, then the CI smoke — a
// 4-node live cluster settles a payment and its scrape must contain
// the core series catalogue with a non-empty decide-latency histogram.
#include <gtest/gtest.h>
#include <poll.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "chain/wallet.hpp"
#include "net/client_gateway.hpp"
#include "net/live_node.hpp"
#include "net/metrics_server.hpp"

namespace zlb::net {
namespace {

using namespace std::chrono_literals;

/// Blocking one-shot HTTP GET over loopback (the scraper's view).
std::optional<std::string> http_get(std::uint16_t port,
                                    const std::string& path) {
  auto fd = connect_loopback(port);
  if (!fd) return std::nullopt;
  pollfd p{fd->get(), POLLOUT, 0};
  if (::poll(&p, 1, 5000) <= 0 || !connect_finished(*fd)) return std::nullopt;
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  const Bytes out(req.begin(), req.end());
  std::size_t offset = 0;
  const auto deadline = Clock::now() + 5s;
  while (offset < out.size() && Clock::now() < deadline) {
    if (write_some(*fd, out, offset) == IoStatus::kError) return std::nullopt;
    if (offset < out.size()) std::this_thread::sleep_for(2ms);
  }
  Bytes in;
  while (Clock::now() < deadline) {
    const IoStatus status = read_available(*fd, in);
    if (status == IoStatus::kClosed) break;  // Connection: close
    if (status == IoStatus::kError) return std::nullopt;
    if (status == IoStatus::kWouldBlock) std::this_thread::sleep_for(2ms);
  }
  return std::string(in.begin(), in.end());
}

/// Body after the blank line (empty if the response is malformed).
std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string{} : response.substr(pos + 4);
}

TEST(MetricsServer, ServesPrometheusAndJsonOverHttp) {
  EventLoop loop;
  obs::Registry reg;
  reg.counter("zlb_test_requests_total", "Requests").inc(7);
  MetricsServer server(loop, reg, 0);
  ASSERT_TRUE(server.listening());

  std::atomic<bool> stop{false};
  std::thread loop_thread([&] {
    while (!stop.load()) loop.poll_once(std::chrono::milliseconds(5));
  });

  const auto prom = http_get(server.local_port(), "/metrics");
  ASSERT_TRUE(prom.has_value());
  EXPECT_NE(prom->find("200 OK"), std::string::npos);
  EXPECT_NE(prom->find("text/plain"), std::string::npos);
  EXPECT_NE(body_of(*prom).find("zlb_test_requests_total 7"),
            std::string::npos);

  const auto json = http_get(server.local_port(), "/metrics.json");
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("application/json"), std::string::npos);
  EXPECT_NE(body_of(*json).find("\"value\":7"), std::string::npos);

  const auto missing = http_get(server.local_port(), "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_NE(missing->find("404"), std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
  stop.store(true);
  loop_thread.join();
}

TEST(MetricsSmoke, LiveClusterScrapeHasCoreSeries) {
  const std::size_t n = 4;
  chain::Wallet alice(to_bytes("alice"));
  chain::Wallet bob(to_bytes("bob"));

  LiveNodeConfig cfg;
  cfg.instances = 1'000'000;
  cfg.use_ecdsa = false;
  cfg.real_blocks = true;
  cfg.block_interval = std::chrono::milliseconds(60);
  cfg.metrics_port = 0;  // ephemeral, one responder per node
  LiveCluster cluster(n, cfg);
  chain::UtxoSet genesis_view;
  genesis_view.mint(alice.address(), 10'000);
  for (std::size_t i = 0; i < n; ++i) {
    cluster.node(i).block_manager().utxos().mint(alice.address(), 10'000);
    EXPECT_NE(cluster.node(i).metrics_port(), 0) << "node " << i;
  }

  std::thread runner([&cluster] { cluster.run(120s); });

  // Settle one payment so consensus, commit and apply all have data.
  const auto tx = alice.pay(genesis_view, bob.address(), 2'500);
  ASSERT_TRUE(tx.has_value());
  std::optional<GatewayClient> client;
  const auto connect_deadline = Clock::now() + 15s;
  while (!client && Clock::now() < connect_deadline) {
    client = GatewayClient::connect(cluster.node(0).client_port());
    if (!client) std::this_thread::sleep_for(20ms);
  }
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->submit(*tx).has_value());

  const auto deadline = Clock::now() + 90s;
  auto settled = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      if (cluster.node(i).balance(bob.address()) != 2'500) return false;
    }
    return true;
  };
  while (Clock::now() < deadline && !settled()) {
    std::this_thread::sleep_for(25ms);
  }
  ASSERT_TRUE(settled()) << "payment did not commit";

  // Scrape node 0 while the cluster is still running — the mid-run
  // path the atomic TransportStats snapshot exists for.
  const auto prom = http_get(cluster.node(0).metrics_port(), "/metrics");
  ASSERT_TRUE(prom.has_value());
  const std::string text = body_of(*prom);
  for (const char* series :
       {"zlb_transport_bytes_total", "zlb_transport_frames_total",
        "zlb_msgs_total", "zlb_msg_bytes_total", "zlb_mempool_size",
        "zlb_mempool_rejected_total", "zlb_instances_decided_total",
        "zlb_consensus_rounds_total", "zlb_epoch",
        "zlb_block_verify_seconds", "zlb_block_apply_seconds",
        "zlb_decide_latency_seconds", "zlb_e2e_latency_seconds",
        "zlb_decide_phase_latency_seconds", "zlb_event_loop_watches"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
  // The decide-latency histogram must have real observations.
  const auto count_pos = text.find("zlb_decide_latency_seconds_count ");
  ASSERT_NE(count_pos, std::string::npos);
  std::uint64_t decide_count = 0;
  ASSERT_EQ(std::sscanf(text.c_str() + count_pos,
                        "zlb_decide_latency_seconds_count %" SCNu64,
                        &decide_count),
            1);
  EXPECT_GT(decide_count, 0u) << "decide latency histogram is empty";

  // JSON snapshot; optionally archived as a CI artifact.
  const auto json = http_get(cluster.node(0).metrics_port(), "/metrics.json");
  ASSERT_TRUE(json.has_value());
  const std::string snapshot = body_of(*json);
  EXPECT_NE(snapshot.find("\"zlb_decide_latency_seconds\""),
            std::string::npos);
  if (const char* out = std::getenv("ZLB_METRICS_JSON_OUT")) {
    std::ofstream f(out, std::ios::trunc);
    f << snapshot << "\n";
    EXPECT_TRUE(f.good()) << "failed to write artifact to " << out;
  }

  // Mid-run TransportStats snapshot (satellite of the same contract).
  const TransportStats stats = cluster.node(0).transport_stats();
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.frames_received, 0u);

  for (std::size_t i = 0; i < n; ++i) cluster.node(i).stop();
  runner.join();
}

}  // namespace
}  // namespace zlb::net
