// CheckpointManager: interval-grid triggering, atomic on-disk images
// with the .prev fallback, journal compaction lagging one checkpoint,
// and the crash-recovery contract — restart from snapshot + journal
// tail is bit-identical to an uninterrupted replica and replays only
// the post-checkpoint tail (asserted via ReplayStats).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "chain/wallet.hpp"
#include "sync/checkpoint.hpp"

namespace zlb::sync {
namespace {

class CheckpointFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("zlb-ckpt-" + std::to_string(::getpid()) + "-" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    journal_ = base_ + ".wal";
    ckpt_ = base_ + ".ckpt";
    for (const auto& p :
         {journal_, ckpt_, ckpt_ + ".prev", ckpt_ + ".tmp"}) {
      std::remove(p.c_str());
    }
  }
  void TearDown() override {
    for (const auto& p :
         {journal_, ckpt_, ckpt_ + ".prev", ckpt_ + ".tmp"}) {
      std::remove(p.c_str());
    }
  }

  /// One block per instance: alice pays bob 1 coin from a fresh mint
  /// (every block is valid against the running UTXO set).
  chain::Block make_block(bm::BlockManager& bm, InstanceId index) {
    chain::Block b;
    b.index = index;
    const auto tx = alice_.pay(bm.utxos(), bob_.address(), 1);
    if (tx) b.txs.push_back(*tx);
    return b;
  }

  std::string base_, journal_, ckpt_;
  chain::Wallet alice_{to_bytes("alice")};
  chain::Wallet bob_{to_bytes("bob")};
};

TEST_F(CheckpointFixture, IntervalSnapsToGrid) {
  bm::BlockManager bm;
  bm.utxos().mint(alice_.address(), 1000);
  CheckpointManager mgr(CheckpointConfig{"", 10, 64});
  EXPECT_FALSE(mgr.on_decided(bm, 9));
  EXPECT_TRUE(mgr.on_decided(bm, 10));
  EXPECT_EQ(mgr.watermark(), 10u);
  EXPECT_FALSE(mgr.on_decided(bm, 19));
  // A floor that jumped several intervals lands on the grid, not on
  // the raw floor.
  EXPECT_TRUE(mgr.on_decided(bm, 37));
  EXPECT_EQ(mgr.watermark(), 30u);
  EXPECT_EQ(mgr.stats().taken, 2u);
  ASSERT_NE(mgr.latest(), nullptr);
  EXPECT_GT(mgr.latest()->chunks(), 0u);
}

TEST_F(CheckpointFixture, DiskRoundtripAndJournalCompaction) {
  crypto::Hash32 digest_before{};
  {
    bm::BlockManager bm;
    bm.utxos().mint(alice_.address(), 1000);
    ASSERT_TRUE(bm.open_journal(journal_).has_value());
    CheckpointManager mgr(CheckpointConfig{ckpt_, 10, 128});
    for (InstanceId k = 0; k < 25; ++k) {
      bm.commit_block(make_block(bm, k));
      (void)mgr.on_decided(bm, k + 1);
    }
    EXPECT_EQ(mgr.watermark(), 20u);
    // Compaction lags one checkpoint: at the wm=20 checkpoint the
    // journal dropped records below wm=10 (the .prev watermark).
    EXPECT_GT(mgr.stats().journal_dropped, 0u);
    digest_before = bm.state_digest();
  }

  // Second life: checkpoint restore + tail replay.
  bm::BlockManager bm;
  CheckpointManager mgr(CheckpointConfig{ckpt_, 10, 128});
  const auto snap = mgr.load_disk();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->upto, 20u);
  bm.restore(*snap);
  const auto stats = bm.open_journal(journal_);
  ASSERT_TRUE(stats.has_value());
  // Only the tail: blocks 10..24 (compaction floor was the .prev
  // watermark 10), far fewer than the 25 of a full replay.
  EXPECT_EQ(stats->blocks, 15u);
  EXPECT_EQ(bm.state_digest(), digest_before);
  EXPECT_EQ(bm.utxos().balance(bob_.address()), 25);
}

TEST_F(CheckpointFixture, CrashMidAppendRecoversBitIdentical) {
  // Reference replica: never crashes, commits blocks 0..19 (the 20th
  // block is the one the crash tears — it never counts anywhere).
  bm::BlockManager reference;
  reference.utxos().mint(alice_.address(), 1000);
  bm::BlockManager bm;
  bm.utxos().mint(alice_.address(), 1000);
  ASSERT_TRUE(bm.open_journal(journal_).has_value());
  CheckpointManager mgr(CheckpointConfig{ckpt_, 8, 64});
  for (InstanceId k = 0; k < 20; ++k) {
    const chain::Block b = make_block(bm, k);
    bm.commit_block(b);
    reference.commit_block(b);
    (void)mgr.on_decided(bm, k + 1);
  }
  ASSERT_EQ(mgr.watermark(), 16u);
  // "Kill the node mid-append": a 21st block whose journal record is
  // torn — chop bytes off the tail, exactly what a crash leaves.
  bm.commit_block(make_block(bm, 20));
  {
    const auto size = std::filesystem::file_size(journal_);
    std::filesystem::resize_file(journal_, size - 9);
  }

  // Restart: snapshot first, then the surviving journal tail.
  bm::BlockManager reborn;
  CheckpointManager mgr2(CheckpointConfig{ckpt_, 8, 64});
  const auto snap = mgr2.load_disk();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->upto, 16u);
  reborn.restore(*snap);
  const auto stats = reborn.open_journal(journal_);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->truncated_bytes, 0u) << "torn record must be dropped";
  // Post-checkpoint tail only: blocks 8..19 (compaction floor = .prev
  // watermark 8), not the 20 a genesis replay would deliver.
  EXPECT_EQ(stats->blocks, 12u);
  EXPECT_EQ(reborn.state_digest(), reference.state_digest())
      << "snapshot + tail must equal the uninterrupted replica";
}

TEST_F(CheckpointFixture, CorruptLatestFallsBackToPrev) {
  bm::BlockManager bm;
  bm.utxos().mint(alice_.address(), 1000);
  ASSERT_TRUE(bm.open_journal(journal_).has_value());
  CheckpointManager mgr(CheckpointConfig{ckpt_, 5, 64});
  for (InstanceId k = 0; k < 12; ++k) {
    bm.commit_block(make_block(bm, k));
    (void)mgr.on_decided(bm, k + 1);
  }
  ASSERT_EQ(mgr.watermark(), 10u);
  // Flip a byte inside the latest image's payload.
  {
    std::FILE* f = std::fopen(ckpt_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);
  }
  bm::BlockManager reborn;
  CheckpointManager mgr2(CheckpointConfig{ckpt_, 5, 64});
  const auto snap = mgr2.load_disk();
  ASSERT_TRUE(snap.has_value()) << "must fall back to .prev";
  EXPECT_EQ(snap->upto, 5u);
  reborn.restore(*snap);
  const auto stats = reborn.open_journal(journal_);
  ASSERT_TRUE(stats.has_value());
  // The journal floor is the .prev watermark, so .prev + tail covers
  // everything even with the latest image gone.
  EXPECT_EQ(reborn.state_digest(), bm.state_digest());
}

TEST_F(CheckpointFixture, MemoryModeNeverTouchesDiskOrJournal) {
  bm::BlockManager bm;
  bm.utxos().mint(alice_.address(), 1000);
  ASSERT_TRUE(bm.open_journal(journal_).has_value());
  CheckpointManager mgr(CheckpointConfig{"", 4, 64});
  for (InstanceId k = 0; k < 10; ++k) {
    bm.commit_block(make_block(bm, k));
    (void)mgr.on_decided(bm, k + 1);
  }
  EXPECT_EQ(mgr.watermark(), 8u);
  EXPECT_EQ(mgr.stats().journal_dropped, 0u)
      << "a volatile checkpoint must never shrink the durable journal";
  EXPECT_FALSE(std::filesystem::exists(ckpt_));
  // Full replay still possible.
  bm::BlockManager reborn;
  const auto stats = reborn.open_journal(journal_);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->blocks, 10u);
}

}  // namespace
}  // namespace zlb::sync
