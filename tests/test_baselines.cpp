// The three baseline systems of §5, as *protocol structures*: Red Belly
// (fast, no accountability, forks forever under attack), Polygraph
// (accountable, detects fraud, still cannot recover) and ZLB (detects
// AND recovers). These are the behavioural contrasts Fig. 3/4 and the
// related-work table rest on.
#include <gtest/gtest.h>

#include "baselines/polygraph.hpp"
#include "baselines/redbelly.hpp"

namespace zlb::baselines {
namespace {

TEST(RedBellyConfig, StructurallyNonAccountable) {
  const asmr::ReplicaConfig cfg = redbelly_replica_config(100, 2);
  EXPECT_FALSE(cfg.accountable);
  EXPECT_FALSE(cfg.recovery);
  EXPECT_FALSE(cfg.confirmation);
  EXPECT_EQ(cfg.tx_verify_quorums, 1u);  // t+1 sharded verification
}

TEST(PolygraphConfig, AccountableButNoRecovery) {
  const asmr::ReplicaConfig cfg = polygraph_replica_config(100, 2);
  EXPECT_TRUE(cfg.accountable);
  EXPECT_FALSE(cfg.recovery);
  EXPECT_TRUE(cfg.cert_on_all_votes);     // certified broadcast everywhere
  EXPECT_EQ(cfg.cert_vote_bytes, 322u);   // RSA-sized certificates
  EXPECT_EQ(cfg.tx_verify_quorums, 1u);
}

TEST(PolygraphConfig, RsaSizedWireSignatures) {
  const ClusterConfig cfg = polygraph_cluster_config(10, 100, 1, 1);
  EXPECT_EQ(cfg.signature_size, 256u);
}

class BaselineHappyPath : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineHappyPath, RedBellyDecides) {
  const auto r = run_redbelly(GetParam(), 50, 2, 3);
  EXPECT_GT(r.txs_decided, 0u);
  EXPECT_GT(r.tx_per_sec, 0.0);
  EXPECT_EQ(r.disagreements, 0u);
  EXPECT_EQ(r.pofs, 0u);  // nothing is ever logged
}

TEST_P(BaselineHappyPath, PolygraphDecides) {
  const auto r = run_polygraph(GetParam(), 50, 2, 3);
  EXPECT_GT(r.txs_decided, 0u);
  EXPECT_GT(r.tx_per_sec, 0.0);
  EXPECT_EQ(r.disagreements, 0u);
  EXPECT_EQ(r.pofs, 0u);  // honest runs produce no fraud proofs
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineHappyPath,
                         ::testing::Values(4, 7, 10, 16));

TEST(RedBellyAttack, ForksAndNeverDetects) {
  const auto r = run_redbelly_under_attack(10, AttackKind::kBinaryConsensus,
                                           ms(400), 7);
  EXPECT_GT(r.disagreements, 0u) << "coalition > n/3 must fork Red Belly";
  EXPECT_EQ(r.detect_time, -1) << "Red Belly has no detection";
  EXPECT_EQ(r.pofs, 0u);
  EXPECT_FALSE(r.recovered);
}

TEST(RedBellyAttack, RbcastAttackAlsoForks) {
  const auto r = run_redbelly_under_attack(10, AttackKind::kReliableBroadcast,
                                           ms(400), 7);
  EXPECT_GT(r.disagreements, 0u);
  EXPECT_FALSE(r.recovered);
}

TEST(PolygraphAttack, DetectsButCannotRecover) {
  const auto r = run_polygraph_under_attack(10, AttackKind::kBinaryConsensus,
                                            ms(400), 7);
  EXPECT_GT(r.disagreements, 0u) << "coalition > n/3 must fork Polygraph";
  EXPECT_GE(r.detect_time, 0) << "Polygraph detects fraud";
  EXPECT_GT(r.pofs, 0u) << "PoFs were extracted";
  EXPECT_FALSE(r.recovered) << "but there is no membership change";
}

TEST(PolygraphAttack, DetectionNamesOnlyColluders) {
  const std::size_t n = 10;
  const std::size_t d = (5 * n + 8) / 9 - 1;
  ClusterConfig cfg = polygraph_cluster_config(n, 20, 50, 7);
  cfg.base_delay = DelayModel::kLan;
  cfg.replica.log_slot_cap = 64;
  cfg.replica.confirmation = true;  // Polygraph's certificate exchange
  cfg.deceitful = d;
  cfg.attack = AttackKind::kBinaryConsensus;
  cfg.attack_delay = DelayModel::kUniform;
  cfg.attack_uniform_mean = ms(400);
  Cluster cluster(cfg);
  cluster.run(seconds(600));
  for (ReplicaId id : cluster.honest_ids()) {
    for (ReplicaId culprit : cluster.replica(id).pofs().culprits()) {
      EXPECT_LT(culprit, d) << "honest replica falsely accused";
    }
  }
}

// The paper's Fig. 3 shape at small scale: Polygraph's always-on
// certificates cost throughput relative to Red Belly under identical
// conditions.
TEST(BaselineContrast, CertificatesCostThroughput) {
  const std::size_t n = 10;
  ClusterConfig rb = redbelly_cluster_config(n, 500, 2, 5);
  ClusterConfig pg = polygraph_cluster_config(n, 500, 2, 5);
  // Same calibrated WAN cost model for a fair comparison.
  rb.net.cpu = sim::CpuCost{5.0, 2.0, 300.0};
  pg.net.cpu = rb.net.cpu;
  Cluster c_rb(rb);
  c_rb.run(seconds(3600));
  Cluster c_pg(pg);
  c_pg.run(seconds(3600));
  EXPECT_GT(c_rb.report().decided_tx_per_sec,
            c_pg.report().decided_tx_per_sec);
}

}  // namespace
}  // namespace zlb::baselines
