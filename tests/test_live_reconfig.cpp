// The live analogue of test_attack_recovery: a 4-replica deceitful
// coalition in a 10-node TCP cluster equivocates on its accountable
// votes, every honest node extracts proofs of fraud, the exclusion
// consensus cuts the coalition out, the inclusion consensus admits 4
// standby replicas from the configured pool, the transport tears the
// excluded links down and raises the new ones, the standbys activate on
// t+1 signed epoch announcements and catch up through cross-validated
// checkpoint transfer, and payments keep settling under epoch 1 —
// Alg. 1 end to end over real sockets.
#include <gtest/gtest.h>

#include <thread>

#include "chain/wallet.hpp"
#include "net/client_gateway.hpp"
#include "net/live_node.hpp"

namespace zlb::net {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kCommittee = 10;
constexpr std::size_t kPool = 4;
const std::vector<ReplicaId> kColluders = {6, 7, 8, 9};

bool is_colluder(ReplicaId id) {
  return std::find(kColluders.begin(), kColluders.end(), id) !=
         kColluders.end();
}

// Engine-level epoch coverage: the signing bytes carry the epoch via
// the instance key, so a vote for the same (slot, round, value) in a
// different epoch neither verifies under the old bytes nor reaches an
// engine keyed elsewhere.
TEST(LiveReconfigUnits, EngineRejectsCrossEpochVotes) {
  crypto::SimScheme scheme(64);
  const std::vector<ReplicaId> members = {0, 1, 2, 3};
  consensus::SbcEngine::Config cfg;
  cfg.epoch = 1;
  int broadcasts = 0;
  consensus::SbcEngine::Hooks hooks;
  hooks.broadcast = [&](Bytes, std::uint32_t, std::uint64_t) { ++broadcasts; };
  consensus::SbcEngine engine({1, consensus::InstanceKind::kRegular, 7},
                              members, nullptr, 0, scheme, cfg, hooks);
  ASSERT_FALSE(engine.stopped());

  // An epoch-0 echo for the same instance index: ignored entirely.
  consensus::SignedVote vote;
  vote.signer = 1;
  vote.body.key = {0, consensus::InstanceKind::kRegular, 7};
  vote.body.type = consensus::VoteType::kEcho;
  vote.body.value = Bytes(32, 0xaa);
  const Bytes sb = vote.body.signing_bytes();
  vote.signature = scheme.sign(1, BytesView(sb.data(), sb.size()));
  engine.handle_vote(vote);
  EXPECT_EQ(engine.slot_debug(0).echoes, 0u);

  // The right-epoch twin lands.
  vote.body.key.epoch = 1;
  const Bytes sb1 = vote.body.signing_bytes();
  vote.signature = scheme.sign(1, BytesView(sb1.data(), sb1.size()));
  engine.handle_vote(vote);
  EXPECT_EQ(engine.slot_debug(0).echoes, 1u);
  EXPECT_EQ(engine.slot_debug(0).epoch, 1u);
}

TEST(LiveReconfigUnits, EngineEpochConfigMismatchIsDeadOnArrival) {
  crypto::SimScheme scheme(64);
  consensus::SbcEngine::Config cfg;
  cfg.epoch = 0;  // caller wired epoch 0 ...
  consensus::SbcEngine engine({2, consensus::InstanceKind::kRegular, 0},
                              {0, 1, 2, 3}, nullptr, 0, scheme, cfg,
                              {});  // ... against an epoch-2 key
  EXPECT_TRUE(engine.stopped());
  engine.resume();  // resume must not revive a misconfigured engine
  EXPECT_TRUE(engine.stopped());
}

TEST(LiveReconfigUnits, OutcomeEntriesCarryTheEpoch) {
  crypto::SimScheme scheme(64);
  const std::vector<ReplicaId> members = {0, 1, 2, 3};
  std::vector<std::unique_ptr<consensus::SbcEngine>> engines;
  std::vector<Bytes> wires[4];
  consensus::SbcEngine::Config cfg;
  cfg.epoch = 3;
  for (ReplicaId me = 0; me < 4; ++me) {
    consensus::SbcEngine::Hooks hooks;
    hooks.broadcast = [&wires, me](Bytes data, std::uint32_t, std::uint64_t) {
      wires[me].push_back(std::move(data));
    };
    engines.push_back(std::make_unique<consensus::SbcEngine>(
        consensus::InstanceKey{3, consensus::InstanceKind::kRegular, 0},
        members, nullptr, me, scheme, cfg, std::move(hooks)));
  }
  for (ReplicaId me = 0; me < 4; ++me) {
    Writer w;
    w.u32(me);
    engines[me]->propose(w.take(), 0, 1);
  }
  // Flood-deliver until quiescent.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (ReplicaId from = 0; from < 4; ++from) {
      std::vector<Bytes> pending;
      pending.swap(wires[from]);
      progressed = progressed || !pending.empty();
      for (const Bytes& wire : pending) {
        Reader r(BytesView(wire.data() + 1, wire.size() - 1));
        for (auto& engine : engines) {
          Reader rr(BytesView(wire.data() + 1, wire.size() - 1));
          if (wire[0] == 2) {
            engine->handle_proposal(consensus::ProposalMsg::decode(rr));
          } else {
            engine->handle_vote(consensus::SignedVote::decode(rr));
          }
        }
        (void)r;
      }
    }
  }
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->has_decided());
    ASSERT_FALSE(engine->outcome().empty());
    for (const auto& entry : engine->outcome()) {
      EXPECT_EQ(entry.epoch, 3u);
    }
  }
}

// ---------------------------------------------------------------------

TEST(LiveReconfig, CoalitionExcludedPoolAdmittedPaymentsContinue) {
  chain::Wallet alice(to_bytes("alice"));
  chain::Wallet bob(to_bytes("bob"));
  chain::Wallet carol(to_bytes("carol"));

  LiveNodeConfig base;
  base.instances = 1'000'000;  // effectively unbounded; we stop the nodes
  base.use_ecdsa = false;      // protocol sigs; tx sigs stay real ECDSA
  base.real_blocks = true;
  base.block_interval = std::chrono::milliseconds(10);
  base.resync_interval = std::chrono::milliseconds(50);
  base.linger_after_decided = true;
  base.checkpoint.interval = 8;
  base.checkpoint.chunk_size = 512;  // real multi-chunk transfers
  for (ReplicaId i = 0; i < kCommittee; ++i) base.committee.push_back(i);
  for (ReplicaId i = 0; i < kPool; ++i) {
    base.pool.push_back(static_cast<ReplicaId>(kCommittee + i));
  }

  std::map<ReplicaId, std::uint16_t> ports;
  std::vector<std::unique_ptr<LiveNode>> nodes;
  for (ReplicaId i = 0; i < kCommittee + kPool; ++i) {
    LiveNodeConfig cfg = base;
    cfg.me = i;
    cfg.standby = i >= kCommittee;
    if (is_colluder(i)) {
      cfg.byzantine_equivocate = true;
      cfg.equivocate_from = 4;  // settle real payments first
    }
    nodes.push_back(std::make_unique<LiveNode>(cfg));
    ports[i] = nodes.back()->port();
  }
  for (auto& node : nodes) {
    node->set_peer_ports(ports);
    node->block_manager().utxos().mint(alice.address(), 100'000);
  }

  std::vector<std::thread> threads;
  threads.reserve(nodes.size());
  for (auto& node : nodes) {
    threads.emplace_back([n = node.get()] { n->run(240s); });
  }
  // Guaranteed teardown on any assertion exit.
  struct Stopper {
    std::vector<std::unique_ptr<LiveNode>>& nodes;
    std::vector<std::thread>& threads;
    ~Stopper() {
      for (auto& n : nodes) n->stop();
      for (auto& t : threads) t.join();
    }
  } stopper{nodes, threads};

  // A pre-attack payment through an honest gateway.
  chain::UtxoSet view;
  view.mint(alice.address(), 100'000);
  const auto tx1 = alice.pay(view, bob.address(), 7'000);
  ASSERT_TRUE(tx1.has_value());
  std::optional<GatewayClient> c0;
  const auto connect_deadline = Clock::now() + 20s;
  while (!c0 && Clock::now() < connect_deadline) {
    c0 = GatewayClient::connect(nodes[0]->client_port());
    if (!c0) std::this_thread::sleep_for(20ms);
  }
  ASSERT_TRUE(c0.has_value());
  ASSERT_TRUE(c0->submit(*tx1).has_value());

  const auto deadline = Clock::now() + 210s;

  // The coalition equivocates from instance 4 on; every honest veteran
  // must reach epoch 1.
  auto honest_recovered = [&] {
    for (ReplicaId i = 0; i < kCommittee; ++i) {
      if (is_colluder(i)) continue;
      if (nodes[i]->epoch() < 1) return false;
    }
    return true;
  };
  while (Clock::now() < deadline && !honest_recovered()) {
    std::this_thread::sleep_for(25ms);
  }
  ASSERT_TRUE(honest_recovered()) << "membership change never completed";

  // Every standby activates into epoch 1.
  auto standbys_active = [&] {
    for (std::size_t i = kCommittee; i < nodes.size(); ++i) {
      if (!nodes[i]->active() || nodes[i]->epoch() < 1) return false;
    }
    return true;
  };
  while (Clock::now() < deadline && !standbys_active()) {
    std::this_thread::sleep_for(25ms);
  }
  ASSERT_TRUE(standbys_active()) << "pool replicas never admitted";

  // The epoch-1 committee is identical everywhere honest: the six
  // surviving veterans plus the four pool replicas, no colluder.
  std::vector<ReplicaId> expected;
  for (ReplicaId i = 0; i < kCommittee + kPool; ++i) {
    if (!is_colluder(i)) expected.push_back(i);
  }
  for (ReplicaId i = 0; i < kCommittee + kPool; ++i) {
    if (is_colluder(i)) continue;
    EXPECT_EQ(nodes[i]->committee_members(), expected) << "node " << i;
  }

  // Accountability was the trigger. A veteran may legitimately be
  // healed by the announcement instead of finishing the inclusion
  // itself (the consensus only needs a quorum), so the full
  // excluded/included counters appear on the nodes that executed the
  // change — and adoption takes t+1 such signers, so at least t+1
  // veterans must show them, with consistent phase ordering.
  std::size_t executed = 0;
  for (ReplicaId i = 0; i < kCommittee; ++i) {
    if (is_colluder(i)) continue;
    const auto stats = nodes[i]->reconfig_stats();
    EXPECT_EQ(stats.epoch, 1u) << "node " << i;
    EXPECT_GE(stats.include_ms, 0) << "node " << i;
    if (stats.excluded == 0) continue;  // healed by announcement
    ++executed;
    EXPECT_EQ(stats.excluded, kColluders.size()) << "node " << i;
    EXPECT_EQ(stats.included, kPool) << "node " << i;
    EXPECT_GE(stats.detect_ms, 0) << "node " << i;
    EXPECT_GE(stats.exclude_ms, stats.detect_ms) << "node " << i;
    EXPECT_GE(stats.include_ms, stats.exclude_ms) << "node " << i;
  }
  EXPECT_GE(executed, (kCommittee - 1) / 3 + 1)
      << "fewer veterans executed the change than adoption requires";

  // Payments keep settling under the new committee — including on the
  // admitted standbys, which must have caught up to the pre-attack
  // state they never executed.
  const auto pay_deadline = Clock::now() + 120s;
  std::optional<GatewayClient> c1;
  while (!c1 && Clock::now() < pay_deadline) {
    c1 = GatewayClient::connect(nodes[1]->client_port());
    if (!c1) std::this_thread::sleep_for(20ms);
  }
  ASSERT_TRUE(c1.has_value());
  std::optional<chain::Transaction> tx2;
  while (Clock::now() < pay_deadline && !tx2) {
    // Bob's coin exists once tx1 committed; build the spend from the
    // committed UTXO view of an honest veteran.
    const auto coins = nodes[0]->owned_coins(bob.address());
    if (coins.empty()) {
      std::this_thread::sleep_for(25ms);
      continue;
    }
    tx2 = bob.pay_from(coins, carol.address(), 2'500);
  }
  ASSERT_TRUE(tx2.has_value()) << "pre-attack payment never committed";
  ASSERT_TRUE(c1->submit(*tx2).has_value());

  auto members_have = [&](const chain::Address& a, chain::Amount v) {
    for (ReplicaId i = 0; i < kCommittee + kPool; ++i) {
      if (is_colluder(i)) continue;
      if (nodes[i]->balance(a) != v) return false;
    }
    return true;
  };
  while (Clock::now() < pay_deadline &&
         !members_have(carol.address(), 2'500)) {
    std::this_thread::sleep_for(25ms);
  }
  auto dump_state = [&] {
    // First decided-instance digest disagreement vs node 0, per node.
    const auto ref_decisions = nodes[0]->decisions();
    std::map<InstanceId, std::vector<crypto::Hash32>> ref_by_index;
    for (const auto& d : ref_decisions) ref_by_index[d.index] = d.digests;
    for (ReplicaId i = 1; i < kCommittee + kPool; ++i) {
      if (is_colluder(i)) continue;
      for (const auto& d : nodes[i]->decisions()) {
        const auto it = ref_by_index.find(d.index);
        if (it == ref_by_index.end() || it->second == d.digests) continue;
        std::fprintf(stderr,
                     "node %u DIVERGES at instance %llu (epoch %u): %zu vs "
                     "%zu digests\n",
                     i, static_cast<unsigned long long>(d.index), d.epoch,
                     d.digests.size(), it->second.size());
        break;
      }
    }
    for (ReplicaId i = 0; i < kCommittee + kPool; ++i) {
      const auto sync = nodes[i]->sync_stats();
      const auto rc = nodes[i]->reconfig_stats();
      // Lowest instance this node recorded no decision for (settled
      // instances have no record; start above the installed watermark).
      std::set<InstanceId> have;
      for (const auto& d : nodes[i]->decisions()) have.insert(d.index);
      InstanceId gap = sync.installed_upto;
      while (have.count(gap) != 0) ++gap;
      std::fprintf(stderr, "node %u: first decision gap at %llu\n", i,
                   static_cast<unsigned long long>(gap));
      std::fprintf(
          stderr,
          "node %u%s: epoch=%u active=%d decided=%llu installed=%llu "
          "installed_upto=%llu endorsed=%llu adopted=%llu manifests_sent=%llu "
          "chunks_served=%llu chunks_recv=%llu stale_manifests=%llu "
          "cross_epoch=%llu bob=%lld carol=%lld\n",
          i, is_colluder(i) ? " (colluder)" : (i >= kCommittee ? " (pool)" : ""),
          nodes[i]->epoch(), nodes[i]->active() ? 1 : 0,
          static_cast<unsigned long long>(nodes[i]->decided_count()),
          static_cast<unsigned long long>(sync.snapshots_installed),
          static_cast<unsigned long long>(sync.installed_upto),
          static_cast<unsigned long long>(sync.fetch.manifests_endorsed),
          static_cast<unsigned long long>(sync.fetch.manifests_adopted),
          static_cast<unsigned long long>(sync.manifests_sent),
          static_cast<unsigned long long>(sync.chunks_served),
          static_cast<unsigned long long>(sync.fetch.chunks_received),
          static_cast<unsigned long long>(rc.stale_manifests_rejected),
          static_cast<unsigned long long>(rc.cross_epoch_dropped),
          static_cast<long long>(nodes[i]->balance(bob.address())),
          static_cast<long long>(nodes[i]->balance(carol.address())));
    }
  };
  if (!members_have(carol.address(), 2'500)) dump_state();
  EXPECT_TRUE(members_have(carol.address(), 2'500))
      << "post-recovery payment did not settle cluster-wide";
  EXPECT_TRUE(members_have(bob.address(), 4'500));

  // The standbys came up through verified snapshot transfer (their
  // pre-join history is below their join boundary), cross-validated by
  // t+1 matching manifests.
  for (std::size_t i = kCommittee; i < nodes.size(); ++i) {
    const auto stats = nodes[i]->sync_stats();
    EXPECT_GE(stats.snapshots_installed, 1u) << "standby " << i;
    EXPECT_GE(stats.fetch.manifests_endorsed, 2u) << "standby " << i;
  }

  // Ledgers converge across the whole epoch-1 membership.
  const crypto::Hash32 ref = nodes[0]->state_digest();
  for (ReplicaId i = 1; i < kCommittee + kPool; ++i) {
    if (is_colluder(i)) continue;
    EXPECT_EQ(nodes[i]->state_digest(), ref) << "node " << i;
  }
}

}  // namespace
}  // namespace zlb::net
