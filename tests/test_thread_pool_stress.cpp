// Adversarial ThreadPool exercises aimed at the shutdown and exception
// paths rather than throughput: concurrent submitters hammering one
// pool, fn() throwing mid-batch, parallel_for racing the destructor,
// and rapid construct/destroy cycles. Run under TSan these double as
// the race regression suite for the pool's lock/condvar protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace zlb::common {
namespace {

TEST(ThreadPoolStress, ExactlyOnceUnderConcurrentSubmitters) {
  ThreadPool pool(3);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kN = 257;  // not a multiple of the lane count
  std::vector<std::unique_ptr<std::atomic<std::uint32_t>>> hits;
  hits.reserve(kSubmitters * kN);
  for (std::size_t i = 0; i < kSubmitters * kN; ++i) {
    hits.push_back(std::make_unique<std::atomic<std::uint32_t>>(0));
  }
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        pool.parallel_for(kN, [&, s](std::size_t i) {
          hits[s * kN + i]->fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i]->load(), kRounds) << "index " << i;
  }
}

TEST(ThreadPoolStress, ThrowingFnStillRunsEveryIndexAndRethrows) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::unique_ptr<std::atomic<bool>>> ran;
    ran.reserve(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      ran.push_back(std::make_unique<std::atomic<bool>>(false));
    }
    bool threw = false;
    try {
      pool.parallel_for(kN, [&](std::size_t i) {
        ran[i]->store(true, std::memory_order_relaxed);
        if (i % 97 == 0) throw std::runtime_error("bad index");
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // The exactly-once contract holds even on the failing batch: no
    // silent holes that a caller's results array would misreport.
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_TRUE(ran[i]->load()) << "index " << i << " skipped";
    }
  }
}

TEST(ThreadPoolStress, TeardownWithColdWorkers) {
  // Destruction immediately after the last batch returns: the workers
  // are parked in cv_.wait and must all observe stop_ and exit (a lost
  // notify here deadlocks the destructor's join).
  for (int round = 0; round < 50; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<std::uint64_t> sum{0};
    std::thread submitter([&] {
      for (int batch = 0; batch < 8; ++batch) {
        pool->parallel_for(64, [&](std::size_t) {
          sum.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
    submitter.join();
    pool.reset();
    EXPECT_EQ(sum.load(), 8u * 64u);
  }
}

TEST(ThreadPoolStress, RapidConstructDestroyCycles) {
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(3);
    std::atomic<std::uint32_t> count{0};
    pool.parallel_for(16, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 16u);
  }
}

TEST(ThreadPoolStress, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::uint64_t sum = 0;  // no atomics needed: everything is inline
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 999u * 1000u / 2u);
}

}  // namespace
}  // namespace zlb::common
