// 256-bit arithmetic and modular reduction properties, including
// randomized property sweeps against the definitions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/u256.hpp"

namespace zlb::crypto {
namespace {

U256 random_u256(Rng& rng) {
  return U256{rng.next(), rng.next(), rng.next(), rng.next()};
}

TEST(U256, HexRoundtrip) {
  const U256 v = U256::from_hex(
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.to_hex(),
            "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256, ShortHexIsZeroPadded) {
  EXPECT_EQ(U256::from_hex("ff"), U256(255));
}

TEST(U256, ByteRoundtrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_bytes(
                  BytesView(v.to_bytes().data(), 32)),
              v);
  }
}

TEST(U256, CompareBasics) {
  EXPECT_LT(cmp(U256(1), U256(2)), 0);
  EXPECT_GT(cmp(U256(1, 0, 0, 0), U256(0, ~0ULL, ~0ULL, ~0ULL)), 0);
  EXPECT_EQ(cmp(U256(5), U256(5)), 0);
}

TEST(U256, AddSubInverse) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    U256 sum, back;
    const auto carry = add_carry(sum, a, b);
    const auto borrow = sub_borrow(back, sum, b);
    EXPECT_EQ(carry, borrow);  // overflow wraps consistently
    EXPECT_EQ(back, a);
  }
}

TEST(U256, TopBit) {
  EXPECT_EQ(U256().top_bit(), -1);
  EXPECT_EQ(U256(1).top_bit(), 0);
  EXPECT_EQ(U256(1, 0, 0, 0).top_bit(), 192);
  U256 v(0x8000000000000000ULL, 0, 0, 0);
  EXPECT_EQ(v.top_bit(), 255);
}

TEST(U256, MulWideSmall) {
  const U512 prod = mul_wide(U256(3), U256(7));
  EXPECT_EQ(prod[0], 21u);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(prod[static_cast<std::size_t>(i)], 0u);
}

TEST(U256, MulWideCross) {
  // (2^64)(2^64) = 2^128.
  const U512 prod = mul_wide(U256(0, 0, 1, 0), U256(0, 0, 1, 0));
  EXPECT_EQ(prod[2], 1u);
}

class ModularProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModularProperty, FieldAxioms) {
  const Modulus& p = curve().p;
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const U256 a = normalize(random_u256(rng), p);
    const U256 b = normalize(random_u256(rng), p);
    const U256 c = normalize(random_u256(rng), p);
    // Commutativity.
    EXPECT_EQ(add_mod(a, b, p), add_mod(b, a, p));
    EXPECT_EQ(mul_mod(a, b, p), mul_mod(b, a, p));
    // Associativity of multiplication.
    EXPECT_EQ(mul_mod(mul_mod(a, b, p), c, p),
              mul_mod(a, mul_mod(b, c, p), p));
    // Distributivity.
    EXPECT_EQ(mul_mod(a, add_mod(b, c, p), p),
              add_mod(mul_mod(a, b, p), mul_mod(a, c, p), p));
    // Additive inverse.
    EXPECT_EQ(add_mod(a, sub_mod(U256(), a, p), p), U256());
    // Multiplicative inverse (skip zero).
    if (!a.is_zero()) {
      EXPECT_EQ(mul_mod(a, inv_mod(a, p), p), U256(1));
    }
  }
}

TEST_P(ModularProperty, OrderArithmetic) {
  const Modulus& n = curve().n;
  Rng rng(GetParam() * 31 + 5);
  for (int i = 0; i < 50; ++i) {
    const U256 a = normalize(random_u256(rng), n);
    if (a.is_zero()) continue;
    EXPECT_EQ(mul_mod(a, inv_mod(a, n), n), U256(1));
    // Fermat: a^(n-1) = 1 mod n (n prime).
    U256 n_minus_1;
    sub_borrow(n_minus_1, n.m, U256(1));
    EXPECT_EQ(pow_mod(a, n_minus_1, n), U256(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

TEST(U256, Reduce512MatchesKnownValue) {
  // (p-1)^2 mod p = 1.
  const Modulus& p = curve().p;
  U256 p_minus_1;
  sub_borrow(p_minus_1, p.m, U256(1));
  EXPECT_EQ(mul_mod(p_minus_1, p_minus_1, p), U256(1));
}

TEST(U256, PowModEdgeCases) {
  const Modulus& p = curve().p;
  EXPECT_EQ(pow_mod(U256(5), U256(), p), U256(1));   // x^0 = 1
  EXPECT_EQ(pow_mod(U256(5), U256(1), p), U256(5));  // x^1 = x
  EXPECT_EQ(pow_mod(U256(2), U256(10), p), U256(1024));
}

TEST(U256, InvModMatchesFermat) {
  // The binary extended-gcd inverse must agree with a^(m-2) mod m for
  // both moduli, across random inputs and the boundary values.
  for (const Modulus* mod : {&curve().p, &curve().n}) {
    U256 m_minus_2;
    sub_borrow(m_minus_2, mod->m, U256(2));
    Rng rng(77);
    for (int i = 0; i < 50; ++i) {
      const U256 a = normalize(
          U256{rng.next(), rng.next(), rng.next(), rng.next()}, *mod);
      if (a.is_zero()) continue;
      EXPECT_EQ(inv_mod(a, *mod), pow_mod(a, m_minus_2, *mod));
    }
    U256 m_minus_1;
    sub_borrow(m_minus_1, mod->m, U256(1));
    EXPECT_EQ(inv_mod(U256(1), *mod), U256(1));
    EXPECT_EQ(inv_mod(m_minus_1, *mod), m_minus_1);  // self-inverse
    EXPECT_EQ(inv_mod(U256(), *mod), U256());        // degenerate input
    EXPECT_EQ(inv_mod(mod->m, *mod), U256());        // a ≡ 0 (mod m)
  }
}

TEST(U256, Shr1) {
  EXPECT_EQ(shr1(U256(3)), U256(1));
  EXPECT_EQ(shr1(U256()), U256());
  // Cross-limb borrow: 2^64 >> 1 = 2^63.
  const U256 two64{0, 0, 1, 0};
  EXPECT_EQ(shr1(two64), U256(0, 0, 0, 0x8000000000000000ull));
  U256 doubled;
  add_carry(doubled, two64, two64);
  EXPECT_EQ(shr1(doubled), two64);
}

}  // namespace
}  // namespace zlb::crypto
