// The random-beacon / committee-sortition extension (§B discussion):
// exactness of the hypergeometric takeover probability against an
// arbitrary-precision reference, its monotonicity laws, the m+1-window
// compounding, and the statistical behaviour of sortition itself.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "asmr/beacon.hpp"
#include "common/bytes.hpp"

namespace zlb::asmr {
namespace {

// Exact reference: hypergeometric tail with long-double Pascal
// binomials (fine up to universe ~60 without overflow).
long double choose_ld(std::size_t n, std::size_t k) {
  if (k > n) return 0.0L;
  long double r = 1.0L;
  for (std::size_t i = 0; i < k; ++i) {
    r = r * static_cast<long double>(n - i) / static_cast<long double>(i + 1);
  }
  return r;
}

double takeover_reference(std::size_t universe, std::size_t colluders,
                          std::size_t committee) {
  if (committee == 0 || committee > universe) return 0.0;
  const std::size_t threshold = (committee + 2) / 3;
  long double p = 0.0L;
  const long double denom = choose_ld(universe, committee);
  for (std::size_t k = threshold; k <= std::min(colluders, committee); ++k) {
    if (committee - k > universe - colluders) continue;
    p += choose_ld(colluders, k) *
         choose_ld(universe - colluders, committee - k) / denom;
  }
  return static_cast<double>(p);
}

struct HgCase {
  std::size_t universe, colluders, committee;
};

class HypergeometricExact : public ::testing::TestWithParam<HgCase> {};

TEST_P(HypergeometricExact, MatchesReference) {
  const auto [u, c, k] = GetParam();
  EXPECT_NEAR(coalition_takeover_probability(u, c, k),
              takeover_reference(u, c, k), 1e-9)
      << "universe=" << u << " colluders=" << c << " committee=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HypergeometricExact,
    ::testing::Values(HgCase{10, 3, 4}, HgCase{10, 5, 7}, HgCase{20, 7, 10},
                      HgCase{30, 10, 10}, HgCase{40, 13, 21},
                      HgCase{50, 25, 30}, HgCase{60, 20, 20},
                      HgCase{60, 40, 15}, HgCase{12, 0, 6},
                      HgCase{12, 12, 6}));

TEST(Hypergeometric, EdgeCases) {
  // No committee / oversized committee.
  EXPECT_EQ(coalition_takeover_probability(10, 5, 0), 0.0);
  EXPECT_EQ(coalition_takeover_probability(10, 5, 11), 0.0);
  // No colluders: cannot take over.
  EXPECT_EQ(coalition_takeover_probability(30, 0, 10), 0.0);
  // All colluders: certain takeover.
  EXPECT_NEAR(coalition_takeover_probability(30, 30, 10), 1.0, 1e-12);
  // Committee == universe: deterministic, takeover iff c >= ceil(k/3).
  EXPECT_NEAR(coalition_takeover_probability(9, 3, 9), 1.0, 1e-12);
  EXPECT_NEAR(coalition_takeover_probability(9, 2, 9), 0.0, 1e-12);
}

TEST(Hypergeometric, MonotoneInColluders) {
  double prev = -1.0;
  for (std::size_t c = 0; c <= 60; ++c) {
    const double p = coalition_takeover_probability(60, c, 21);
    EXPECT_GE(p, prev - 1e-12) << "c=" << c;
    prev = p;
  }
}

TEST(Hypergeometric, SmallerCommitteeOfSameRatioIsRiskier) {
  // With 1/3 colluders in the universe, a small committee is easier to
  // take over by sampling luck than a large one (concentration).
  const double small = coalition_takeover_probability(90, 30, 6);
  const double large = coalition_takeover_probability(90, 30, 60);
  EXPECT_GT(small, large);
}

TEST(WindowSuccess, CompoundsPerRound) {
  const double per = coalition_takeover_probability(60, 25, 15);
  ASSERT_GT(per, 0.0);
  ASSERT_LT(per, 1.0);
  EXPECT_NEAR(attack_window_success(60, 25, 15, 0), per, 1e-12);
  EXPECT_NEAR(attack_window_success(60, 25, 15, 3), std::pow(per, 4), 1e-12);
  // Deeper finalization windows strictly help.
  double prev = 1.1;
  for (int m = 0; m <= 16; ++m) {
    const double w = attack_window_success(60, 25, 15, m);
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(Sortition, WithoutReplacementAndSorted) {
  RandomBeacon beacon(to_bytes("seed"));
  std::vector<ReplicaId> universe;
  for (ReplicaId i = 0; i < 50; ++i) universe.push_back(i);
  for (int round = 0; round < 20; ++round) {
    beacon.absorb(crypto::sha256(to_bytes(std::to_string(round))));
    const auto committee = sortition(beacon, universe, 13);
    ASSERT_EQ(committee.size(), 13u);
    EXPECT_TRUE(std::is_sorted(committee.begin(), committee.end()));
    EXPECT_EQ(std::adjacent_find(committee.begin(), committee.end()),
              committee.end())
        << "duplicate member";
    for (ReplicaId id : committee) EXPECT_LT(id, 50u);
  }
}

TEST(Sortition, OversizedRequestReturnsWholeUniverse) {
  RandomBeacon beacon(to_bytes("seed"));
  std::vector<ReplicaId> universe{3, 1, 2};
  const auto committee = sortition(beacon, universe, 10);
  EXPECT_EQ(committee, (std::vector<ReplicaId>{1, 2, 3}));
}

TEST(Sortition, SeatFrequencyIsRoughlyUniform) {
  // Every node should be picked ~ rounds * k / u times across many
  // beacon steps. With 4000 rounds, k/u = 1/5: expectation 800.
  RandomBeacon beacon(to_bytes("frequency"));
  std::vector<ReplicaId> universe;
  for (ReplicaId i = 0; i < 50; ++i) universe.push_back(i);
  std::map<ReplicaId, int> seats;
  const int rounds = 4000;
  for (int r = 0; r < rounds; ++r) {
    beacon.absorb(crypto::sha256(to_bytes(std::to_string(r))));
    for (ReplicaId id : sortition(beacon, universe, 10)) seats[id] += 1;
  }
  for (ReplicaId i = 0; i < 50; ++i) {
    EXPECT_GT(seats[i], 600) << "node " << i << " starved";
    EXPECT_LT(seats[i], 1000) << "node " << i << " favoured";
  }
}

TEST(Beacon, AbsorbChangesValueAndIsDeterministic) {
  RandomBeacon a(to_bytes("x"));
  RandomBeacon b(to_bytes("x"));
  const auto before = a.value();
  const crypto::Hash32 digest = crypto::sha256(to_bytes("block-7"));
  a.absorb(digest);
  b.absorb(digest);
  EXPECT_NE(a.value(), before);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.draw(), b.draw());
}

// The extension's security claim in one number: resampling committees
// per block makes a <n/3-of-universe coalition's window success decay
// geometrically, while a static committee (the base protocol without
// the beacon) keeps ρ constant.
TEST(WindowSuccess, BeatsStaticCommittee) {
  const std::size_t universe = 120;
  const std::size_t colluders = 35;  // < universe/3
  const std::size_t committee = 30;
  const double per = coalition_takeover_probability(universe, colluders,
                                                    committee);
  ASSERT_GT(per, 0.0);
  EXPECT_LT(attack_window_success(universe, colluders, committee, 8),
            per * 0.01);
}

}  // namespace
}  // namespace zlb::asmr
