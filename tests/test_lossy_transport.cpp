// Liveness under wire loss. TCP connection churn silently loses
// fully-sent frames (transport.cpp::compact rewinds only to the last
// frame boundary), and the SBC liveness argument assumes reliable
// delivery — so the live engine path carries an anti-entropy resync
// (periodic kResyncStatus heartbeats answered with wire-log replays)
// and the transport never permanently abandons a link. These tests
// drive both recovery paths deliberately: forced link severing that
// discards queued frames mid-consensus, and a peer that only comes up
// after the initiator exhausted its fast reconnect budget.
#include <gtest/gtest.h>

#include <thread>

#include "net/live_node.hpp"

namespace zlb::net {
namespace {

using namespace std::chrono_literals;

LiveNodeConfig lossy_config(std::uint64_t instances) {
  LiveNodeConfig cfg;
  cfg.instances = instances;
  cfg.use_ecdsa = false;
  cfg.engine.accountable = true;
  // Tight resync so recovery (not the deadline) dominates test time.
  cfg.resync_interval = 50ms;
  return cfg;
}

void expect_agreement(LiveCluster& cluster, std::uint64_t instances) {
  for (std::uint64_t k = 0; k < instances; ++k) {
    const LiveDecision* ref = nullptr;
    std::vector<LiveDecision> ref_store;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const auto decisions = cluster.node(i).decisions();
      const auto it =
          std::find_if(decisions.begin(), decisions.end(),
                       [&](const LiveDecision& d) { return d.index == k; });
      ASSERT_NE(it, decisions.end())
          << "node " << i << " missing instance " << k;
      if (ref == nullptr) {
        ref_store.push_back(*it);
        ref = &ref_store.back();
      } else {
        EXPECT_EQ(it->bitmask, ref->bitmask) << "node " << i;
        EXPECT_EQ(it->digests, ref->digests) << "node " << i;
      }
    }
  }
}

// Every node severs all of its links 20 ms into the run and throws
// away whatever was queued — frames "handed to the kernel and lost
// with the connection". Without the resync replay this regularly
// strands an instance forever (the startup-race hang this guards
// against); with it, the cluster must still decide and agree.
TEST(LossyLiveCluster, DecidesDespiteInjectedFrameLoss) {
  LiveNodeConfig cfg = lossy_config(2);
  cfg.inject_drop_after = 20ms;
  LiveCluster cluster(4, cfg);
  ASSERT_TRUE(cluster.run(20s));
  expect_agreement(cluster, 2);
}

// Same injection with queued payloads riding in the very first frames
// (the exact shape of the QueuedPayloadsAreDecided flake) and a wider
// committee, so the loss lands on proposals, not just votes.
TEST(LossyLiveCluster, QueuedPayloadsSurviveFrameLoss) {
  LiveNodeConfig cfg = lossy_config(1);
  cfg.inject_drop_after = 10ms;
  LiveCluster cluster(7, cfg);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i).queue_payload(to_bytes("lossy-payload-of-node-" +
                                           std::to_string(i)));
  }
  ASSERT_TRUE(cluster.run(20s));
  expect_agreement(cluster, 1);
  EXPECT_GT(cluster.node(0).decisions()[0].payload_bytes, 0u);
}

// The permanent-partition regression: an initiator that exhausts
// max_reconnect_attempts while the peer is down must keep probing and
// heal once the peer finally binds — previously it gave up for good.
TEST(TransportRecovery, HealsAfterReconnectBudgetExhausted) {
  // The late peer's port is reserved by binding and releasing it;
  // another process could squat it in that window, so the whole
  // scenario retries on a fresh port instead of failing spuriously.
  for (int attempt = 0; attempt < 3; ++attempt) {
    EventLoop loop_a;
    EventLoop loop_b;

    std::uint16_t late_port = 0;
    {
      auto reserved = listen_loopback(0);
      ASSERT_TRUE(reserved.has_value());
      late_port = reserved->second;
    }

    TransportConfig cfg_a;
    cfg_a.me = 1;
    cfg_a.peers = {{0, late_port}};
    cfg_a.reconnect_delay = 2ms;
    cfg_a.probe_delay = 10ms;
    cfg_a.max_reconnect_attempts = 3;
    TcpTransport a(loop_a, cfg_a);
    ASSERT_TRUE(a.listening());
    a.send(0, to_bytes("queued-before-peer-exists"));
    a.start();

    // Burn through the fast-reconnect budget against the dead address.
    const auto burn_until = Clock::now() + 100ms;
    while (Clock::now() < burn_until) {
      loop_a.poll_once(std::chrono::milliseconds(1));
    }
    EXPECT_FALSE(a.connected(0));

    // Peer 0 finally comes up on the reserved port.
    TransportConfig cfg_b;
    cfg_b.me = 0;
    cfg_b.listen_port = late_port;
    cfg_b.peers = {{1, a.local_port()}};
    TcpTransport b(loop_b, cfg_b);
    if (!b.listening()) continue;  // port squatted meanwhile — retry
    Bytes received;
    b.set_handler([&](ReplicaId from, BytesView payload) {
      EXPECT_EQ(from, 1u);
      received.assign(payload.begin(), payload.end());
    });
    b.start();

    const auto deadline = Clock::now() + 5s;
    while (Clock::now() < deadline && received.empty()) {
      loop_a.poll_once(std::chrono::milliseconds(1));
      loop_b.poll_once(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(a.connected(0));
    EXPECT_EQ(received, to_bytes("queued-before-peer-exists"));
    return;
  }
  GTEST_SKIP() << "reserved loopback port kept getting squatted";
}

// Severing with discard on an established pair loses the queued frame
// for good at the transport level (by design — resend is the consensus
// layer's job); the link itself must come back on its own.
TEST(TransportRecovery, SeverAllLinksReconnects) {
  EventLoop loop_a;
  EventLoop loop_b;

  TransportConfig cfg_b;
  cfg_b.me = 0;
  TcpTransport b(loop_b, cfg_b);
  ASSERT_TRUE(b.listening());

  TransportConfig cfg_a;
  cfg_a.me = 1;
  cfg_a.reconnect_delay = 2ms;
  cfg_a.peers = {{0, b.local_port()}};
  TcpTransport a(loop_a, cfg_a);
  b.set_peers({{1, a.local_port()}});
  a.start();
  b.start();

  const auto connect_deadline = Clock::now() + 5s;
  while (Clock::now() < connect_deadline &&
         !(a.connected(0) && b.connected(1))) {
    loop_a.poll_once(std::chrono::milliseconds(1));
    loop_b.poll_once(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(a.connected(0));

  a.sever_all_links(/*discard_queued=*/true);
  EXPECT_FALSE(a.connected(0));

  const auto heal_deadline = Clock::now() + 5s;
  while (Clock::now() < heal_deadline && !a.connected(0)) {
    loop_a.poll_once(std::chrono::milliseconds(1));
    loop_b.poll_once(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(a.connected(0));
  EXPECT_GE(a.stats().connections_dropped, 1u);
}

}  // namespace
}  // namespace zlb::net
