// The TCP substrate: frame codec (incremental decoding across
// arbitrary stream splits, poisoning), the poll event loop (timers,
// fd readiness) and the TcpTransport (handshake, queuing before
// connect, large payloads, bad-peer rejection).
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace zlb::net {
namespace {

Bytes pattern_bytes(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return b;
}

TEST(Frame, EncodesLengthPrefix) {
  const Bytes frame = encode_frame(to_bytes("abc"));
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame[0], 3u);
  EXPECT_EQ(frame[1], 0u);
  EXPECT_EQ(frame[2], 0u);
  EXPECT_EQ(frame[3], 0u);
  EXPECT_EQ(frame[4], 'a');
}

TEST(Frame, RoundtripSingle) {
  const Bytes payload = pattern_bytes(1000, 7);
  const Bytes wire = encode_frame(BytesView(payload.data(), payload.size()));
  FrameDecoder dec;
  std::vector<Bytes> got;
  ASSERT_TRUE(dec.feed(BytesView(wire.data(), wire.size()),
                       [&](BytesView p) { got.emplace_back(p.begin(), p.end()); }));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(Frame, EmptyPayloadIsAFrame) {
  const Bytes wire = encode_frame({});
  FrameDecoder dec;
  int frames = 0;
  ASSERT_TRUE(dec.feed(BytesView(wire.data(), wire.size()),
                       [&](BytesView p) {
                         EXPECT_TRUE(p.empty());
                         ++frames;
                       }));
  EXPECT_EQ(frames, 1);
}

TEST(Frame, MultipleFramesOneChunk) {
  Bytes wire;
  for (int i = 0; i < 10; ++i) {
    const Bytes p = pattern_bytes(static_cast<std::size_t>(i * 13), 3);
    append_frame(wire, BytesView(p.data(), p.size()));
  }
  FrameDecoder dec;
  int frames = 0;
  ASSERT_TRUE(dec.feed(BytesView(wire.data(), wire.size()),
                       [&](BytesView) { ++frames; }));
  EXPECT_EQ(frames, 10);
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(Frame, OversizedFramePoisons) {
  Bytes wire(4);
  const std::uint32_t huge = (64u << 20) + 1;
  wire[0] = static_cast<std::uint8_t>(huge & 0xff);
  wire[1] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
  wire[2] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
  wire[3] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(BytesView(wire.data(), wire.size()),
                        [](BytesView) { FAIL() << "delivered from poison"; }));
  EXPECT_TRUE(dec.poisoned());
  // Poisoned decoders never deliver again.
  const Bytes ok = encode_frame(to_bytes("x"));
  EXPECT_FALSE(dec.feed(BytesView(ok.data(), ok.size()),
                        [](BytesView) { FAIL() << "poison not sticky"; }));
}

class FrameSplits : public ::testing::TestWithParam<std::uint64_t> {};

// Property: any split of the byte stream yields the same frames.
TEST_P(FrameSplits, ArbitrarySplitsPreserveFrames) {
  Rng rng(GetParam());
  std::vector<Bytes> payloads;
  Bytes wire;
  const int count = 1 + static_cast<int>(rng.next() % 8);
  for (int i = 0; i < count; ++i) {
    payloads.push_back(pattern_bytes(rng.next() % 300,
                                     static_cast<std::uint8_t>(rng.next())));
    append_frame(wire, BytesView(payloads.back().data(),
                                 payloads.back().size()));
  }

  FrameDecoder dec;
  std::vector<Bytes> got;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t step =
        std::min<std::size_t>(1 + rng.next() % 17, wire.size() - pos);
    ASSERT_TRUE(dec.feed(BytesView(wire.data() + pos, step),
                         [&](BytesView p) {
                           got.emplace_back(p.begin(), p.end());
                         }));
    pos += step;
  }
  EXPECT_EQ(got, payloads);
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameSplits,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(EventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(std::chrono::milliseconds(30), [&] { order.push_back(3); });
  loop.schedule(std::chrono::milliseconds(10), [&] { order.push_back(1); });
  loop.schedule(std::chrono::milliseconds(20), [&] {
    order.push_back(2);
    loop.schedule(std::chrono::milliseconds(25), [&] {
      order.push_back(4);
      loop.stop();
    });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const auto id =
      loop.schedule(std::chrono::milliseconds(5), [&] { fired = true; });
  loop.cancel(id);
  loop.schedule(std::chrono::milliseconds(20), [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, RunReturnsWhenNothingRemains) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(std::chrono::milliseconds(1), [&] { ++fired; });
  loop.run();  // must not hang once the only timer fired
  EXPECT_EQ(fired, 1);
}

TEST(Socket, ListenOnEphemeralPortReportsIt) {
  auto bound = listen_loopback(0);
  ASSERT_TRUE(bound.has_value());
  EXPECT_GT(bound->second, 0);
  EXPECT_TRUE(bound->first.valid());
}

// Drives two transports on one thread until `done` or the deadline.
void drive(EventLoop& loop, const std::function<bool()>& done,
           std::chrono::milliseconds budget) {
  const auto deadline = Clock::now() + budget;
  while (!done() && Clock::now() < deadline) {
    loop.poll_once(std::chrono::milliseconds(5));
  }
}

struct Pair {
  EventLoop loop;
  std::unique_ptr<TcpTransport> a;  // id 0: listens
  std::unique_ptr<TcpTransport> b;  // id 1: connects down to 0

  Pair() {
    a = std::make_unique<TcpTransport>(loop, TransportConfig{0, 0, {}});
    b = std::make_unique<TcpTransport>(loop, TransportConfig{1, 0, {}});
    a->set_peers({{1, b->local_port()}});
    b->set_peers({{0, a->local_port()}});
  }
};

TEST(TcpTransport, HandshakeAndBidirectionalDelivery) {
  Pair pair;
  std::vector<std::pair<ReplicaId, Bytes>> at_a;
  std::vector<std::pair<ReplicaId, Bytes>> at_b;
  pair.a->set_handler([&](ReplicaId from, BytesView p) {
    at_a.emplace_back(from, Bytes(p.begin(), p.end()));
  });
  pair.b->set_handler([&](ReplicaId from, BytesView p) {
    at_b.emplace_back(from, Bytes(p.begin(), p.end()));
  });
  pair.a->start();
  pair.b->start();
  pair.a->send(1, to_bytes("from-a"));
  pair.b->send(0, to_bytes("from-b"));

  drive(pair.loop, [&] { return !at_a.empty() && !at_b.empty(); },
        std::chrono::milliseconds(2000));
  ASSERT_EQ(at_a.size(), 1u);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_a[0].first, 1u);
  EXPECT_EQ(at_a[0].second, to_bytes("from-b"));
  EXPECT_EQ(at_b[0].first, 0u);
  EXPECT_EQ(at_b[0].second, to_bytes("from-a"));
  EXPECT_TRUE(pair.a->connected(1));
  EXPECT_TRUE(pair.b->connected(0));
}

TEST(TcpTransport, QueuedBeforeConnectIsDeliveredAfter) {
  Pair pair;
  std::vector<Bytes> got;
  pair.a->set_handler(
      [&](ReplicaId, BytesView p) { got.emplace_back(p.begin(), p.end()); });
  // Queue three frames on b before anyone starts connecting.
  pair.b->send(0, to_bytes("one"));
  pair.b->send(0, to_bytes("two"));
  pair.b->send(0, to_bytes("three"));
  pair.a->start();
  pair.b->start();
  drive(pair.loop, [&] { return got.size() == 3; },
        std::chrono::milliseconds(2000));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], to_bytes("one"));
  EXPECT_EQ(got[1], to_bytes("two"));
  EXPECT_EQ(got[2], to_bytes("three"));
}

TEST(TcpTransport, DownLinkQueueIsBoundedDropOldest) {
  // A peer that never comes up must not pin every frame ever sent to
  // it: beyond the configured bound the oldest frames are shed (the
  // consensus layer's resync / checkpoint transfer recovers history,
  // not the socket buffer). The newest frames survive and arrive once
  // the link finally heals.
  EventLoop loop;
  TransportConfig cfg_a{0, 0, {}};
  TransportConfig cfg_b{1, 0, {}};
  cfg_b.down_link_buffer_bytes = 256;
  TcpTransport a(loop, cfg_a);
  TcpTransport b(loop, cfg_b);
  a.set_peers({{1, b.local_port()}});
  b.set_peers({{0, a.local_port()}});

  std::vector<Bytes> got;
  a.set_handler(
      [&](ReplicaId, BytesView p) { got.emplace_back(p.begin(), p.end()); });
  // 50 x 32-byte frames >> 256-byte cap, all queued while the link is
  // down (b never started connecting yet).
  for (int i = 0; i < 50; ++i) {
    Bytes frame(32, static_cast<std::uint8_t>(i));
    b.send(0, BytesView(frame.data(), frame.size()));
  }
  EXPECT_GT(b.stats().frames_dropped, 0u);
  a.start();
  b.start();
  drive(loop, [&] { return !got.empty() && b.stats().frames_sent > 0; },
        std::chrono::milliseconds(2000));
  ASSERT_FALSE(got.empty());
  EXPECT_LT(got.size(), 50u) << "the backlog must have been shed";
  // What did arrive is the newest suffix, in order.
  EXPECT_EQ(got.back().front(), 49u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].front(), got[i - 1].front() + 1);
  }
  // An up link is never trimmed: steady traffic all arrives.
  got.clear();
  for (int i = 0; i < 50; ++i) {
    Bytes frame(32, static_cast<std::uint8_t>(100 + i));
    b.send(0, BytesView(frame.data(), frame.size()));
  }
  drive(loop, [&] { return got.size() == 50; },
        std::chrono::milliseconds(2000));
  EXPECT_EQ(got.size(), 50u);
}

TEST(TcpTransport, LargePayloadSurvivesPartialWrites) {
  Pair pair;
  const Bytes big = pattern_bytes(3u << 20, 42);  // 3 MiB >> socket buffers
  Bytes got;
  pair.a->set_handler(
      [&](ReplicaId, BytesView p) { got.assign(p.begin(), p.end()); });
  pair.a->start();
  pair.b->start();
  pair.b->send(0, BytesView(big.data(), big.size()));
  drive(pair.loop, [&] { return !got.empty(); },
        std::chrono::milliseconds(5000));
  EXPECT_EQ(got, big);
}

TEST(TcpTransport, SelfSendLoopsBackThroughTheLoop) {
  EventLoop loop;
  TcpTransport t(loop, TransportConfig{5, 0, {}});
  bool delivered = false;
  bool inline_delivery = true;
  t.set_handler([&](ReplicaId from, BytesView p) {
    EXPECT_EQ(from, 5u);
    EXPECT_EQ(Bytes(p.begin(), p.end()), to_bytes("self"));
    delivered = true;
  });
  t.send(5, to_bytes("self"));
  inline_delivery = delivered;  // must not have been delivered inline
  drive(loop, [&] { return delivered; }, std::chrono::milliseconds(1000));
  EXPECT_FALSE(inline_delivery);
  EXPECT_TRUE(delivered);
}

TEST(TcpTransport, SendToUnknownPeerIsDropped) {
  EventLoop loop;
  TcpTransport t(loop, TransportConfig{0, 0, {}});
  t.send(99, to_bytes("void"));  // must not crash or queue forever
  EXPECT_FALSE(t.connected(99));
}

TEST(TcpTransport, RejectsConnectionWithBadMagic) {
  EventLoop loop;
  TcpTransport a(loop, TransportConfig{0, 0, {{1, 1}}});
  // Raw client that sends garbage instead of a HELLO.
  auto client = connect_loopback(a.local_port());
  ASSERT_TRUE(client.has_value());
  const Bytes garbage = encode_frame(to_bytes("not-a-hello"));
  std::size_t offset = 0;
  drive(loop, [&] { return false; }, std::chrono::milliseconds(50));
  (void)write_some(*client, garbage, offset);
  drive(loop, [&] { return a.stats().handshake_failures > 0; },
        std::chrono::milliseconds(2000));
  EXPECT_GE(a.stats().handshake_failures, 1u);
  EXPECT_EQ(a.connected_count(), 0u);
}

TEST(TcpTransport, RejectsHelloFromWrongDirection) {
  // Peer ids <= ours must not initiate connections to us.
  EventLoop loop;
  TcpTransport a(loop, TransportConfig{5, 0, {{3, 1}}});
  auto client = connect_loopback(a.local_port());
  ASSERT_TRUE(client.has_value());
  Writer w;
  w.u32(0x5a4c4231);
  w.u32(3);  // id 3 < 5: 5 is responsible for connecting, not 3
  const Bytes hello = encode_frame(BytesView(w.data().data(), w.data().size()));
  std::size_t offset = 0;
  drive(loop, [&] { return false; }, std::chrono::milliseconds(50));
  (void)write_some(*client, hello, offset);
  drive(loop, [&] { return a.stats().handshake_failures > 0; },
        std::chrono::milliseconds(2000));
  EXPECT_GE(a.stats().handshake_failures, 1u);
}

}  // namespace
}  // namespace zlb::net
namespace zlb::net {
namespace {

// A peer that dies and comes back: the listener side must adopt the
// replacement connection and keep delivering (link replacement path).
TEST(TcpTransport, PeerReconnectIsAdopted) {
  EventLoop loop;
  TcpTransport a(loop, TransportConfig{0, 0, {{2, 1}}});
  std::vector<Bytes> got;
  a.set_handler(
      [&](ReplicaId, BytesView p) { got.emplace_back(p.begin(), p.end()); });

  auto hello_frame = [] {
    Writer w;
    w.u32(0x5a4c4231);
    w.u32(2);
    return encode_frame(BytesView(w.data().data(), w.data().size()));
  };

  // First incarnation of peer 2.
  {
    auto client = connect_loopback(a.local_port());
    ASSERT_TRUE(client.has_value());
    Bytes wire = hello_frame();
    append_frame(wire, to_bytes("first-life"));
    std::size_t offset = 0;
    drive(loop, [&] { return false; }, std::chrono::milliseconds(50));
    ASSERT_NE(write_some(*client, wire, offset), IoStatus::kError);
    drive(loop, [&] { return !got.empty(); }, std::chrono::milliseconds(2000));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], to_bytes("first-life"));
    EXPECT_TRUE(a.connected(2));
  }  // fd closes: peer 2 dies

  // The transport notices the death on its next poll.
  drive(loop, [&] { return !a.connected(2); },
        std::chrono::milliseconds(2000));
  EXPECT_FALSE(a.connected(2));

  // Second incarnation is adopted and delivers again.
  auto client = connect_loopback(a.local_port());
  ASSERT_TRUE(client.has_value());
  Bytes wire = hello_frame();
  append_frame(wire, to_bytes("second-life"));
  std::size_t offset = 0;
  drive(loop, [&] { return false; }, std::chrono::milliseconds(50));
  ASSERT_NE(write_some(*client, wire, offset), IoStatus::kError);
  drive(loop, [&] { return got.size() == 2; },
        std::chrono::milliseconds(2000));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], to_bytes("second-life"));
  EXPECT_TRUE(a.connected(2));
}

}  // namespace
}  // namespace zlb::net
