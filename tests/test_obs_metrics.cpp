// The observability layer's contracts: log-linear histogram buckets
// and quantiles against a brute-force reference, exact counts under
// concurrent increments (the TSan suite pins the memory-order claims),
// registry idempotence, golden Prometheus/JSON exposition, and
// bit-deterministic spans under a ManualClock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "obs/expo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zlb::obs {
namespace {

TEST(Histogram, BucketIndexIsMonotoneAndCoversRange) {
  // Buckets must partition the value axis: index is monotone in v and
  // every value lands in the bucket whose (upper(i-1), upper(i)] range
  // contains it.
  // Strictly increasing until the top buckets saturate at int64 max
  // (they sit beyond the clamped observe() range and stay empty).
  std::int64_t prev_upper = -1;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::int64_t upper = HistogramSnapshot::bucket_upper(i);
    if (upper == std::numeric_limits<std::int64_t>::max()) {
      EXPECT_GE(upper, prev_upper) << "bucket " << i;
    } else {
      EXPECT_GT(upper, prev_upper) << "bucket " << i;
    }
    prev_upper = upper;
  }
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 20000; ++trial) {
    // Exercise every magnitude: uniform in the exponent, then mantissa.
    const int bits = static_cast<int>(rng() % 63) + 1;
    const auto v = static_cast<std::int64_t>(
        rng() & ((std::uint64_t{1} << bits) - 1));
    const std::size_t idx =
        Histogram::bucket_index(static_cast<std::uint64_t>(v));
    ASSERT_LT(idx, Histogram::kBuckets);
    EXPECT_LE(v, HistogramSnapshot::bucket_upper(idx));
    if (idx > 0) {
      EXPECT_GT(v, HistogramSnapshot::bucket_upper(idx - 1));
    }
  }
}

TEST(Histogram, BucketRelativeErrorBounded) {
  // Log-linear with 4 sub-buckets per octave: the bucket upper bound
  // overestimates any member value by at most 1/kSubBuckets = 25%.
  for (std::int64_t v : {5, 17, 100, 999, 12345, 1000000, 123456789}) {
    const std::size_t idx =
        Histogram::bucket_index(static_cast<std::uint64_t>(v));
    const double upper =
        static_cast<double>(HistogramSnapshot::bucket_upper(idx));
    EXPECT_LE((upper - static_cast<double>(v)) / static_cast<double>(v),
              0.25 + 1e-12)
        << "v=" << v;
  }
}

TEST(Histogram, QuantilesTrackSortedReference) {
  Histogram h;
  std::vector<std::int64_t> values;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform latencies, the shape the histogram is built for.
    const auto v = static_cast<std::int64_t>(
        std::exp(std::uniform_real_distribution<double>(0.0, 18.0)(rng)));
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, values.size());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto ref = static_cast<double>(
        values[static_cast<std::size_t>(q * (values.size() - 1))]);
    const double est = snap.quantile(q);
    // Bucket quantization bounds the error at one bucket width (25%).
    EXPECT_NEAR(est, ref, ref * 0.30 + 4.0) << "q=" << q;
  }
  // Well-defined and monotone at the edges.
  EXPECT_GE(snap.quantile(0.5), snap.quantile(0.0));
  EXPECT_GE(snap.quantile(1.0), snap.quantile(0.5));
}

TEST(Histogram, EmptyAndNegativeObservations) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
  h.observe(-12345);  // clamped to zero, never a wild bucket
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.buckets[0], 1u);
}

TEST(ObsStress, ConcurrentIncrementsAreExact) {
  // Counters shard across cache lines and histograms use relaxed RMWs;
  // the totals must still be exact. This test runs in the TSan suite,
  // which additionally proves the claims about data-race freedom.
  Registry reg;
  Counter& c = reg.counter("zlb_test_ops_total", "ops");
  Gauge& g = reg.gauge("zlb_test_depth", "depth");
  Histogram& h = reg.histogram("zlb_test_latency", "lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1);
        h.observe(t * kPerThread + i);
        // Snapshot reads interleave with writes (the scrape path).
        if (i % 4096 == 0) (void)reg.samples();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(Registry, RegistrationIsIdempotentPerNameAndLabels) {
  Registry reg;
  Counter& a = reg.counter("zlb_x_total", "x", {{"kind", "a"}});
  Counter& a2 = reg.counter("zlb_x_total", "x", {{"kind", "a"}});
  Counter& b = reg.counter("zlb_x_total", "x", {{"kind", "b"}});
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  a.inc(3);
  a2.inc(4);  // same series
  EXPECT_EQ(a.value(), 7u);

  reg.counter_fn("zlb_pull_total", "pulled", [] { return 11u; });
  reg.gauge_fn("zlb_pull_depth", "pulled", [] { return -2; });
  const auto samples = reg.samples();
  // Sorted by name then labels, callbacks evaluated at snapshot time.
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "zlb_pull_depth");
  EXPECT_EQ(samples[0].gauge_value, -2);
  EXPECT_EQ(samples[1].name, "zlb_pull_total");
  EXPECT_EQ(samples[1].counter_value, 11u);
  EXPECT_EQ(samples[2].labels, (LabelSet{{"kind", "a"}}));
  EXPECT_EQ(samples[3].labels, (LabelSet{{"kind", "b"}}));
}

TEST(Exposition, PrometheusGolden) {
  // Scale 0.5 keeps every exported double exact in binary floating
  // point, so the golden cannot rot on printf rounding.
  Registry reg;
  reg.counter("zlb_msgs_total", "Messages", {{"dir", "sent"}}).inc(5);
  reg.gauge("zlb_depth", "Queue depth").set(-3);
  Histogram& h = reg.histogram("zlb_lat_seconds", "Latency", 0.5);
  h.observe(1);  // bucket upper 1 -> le 0.5
  h.observe(2);  // bucket upper 2 -> le 1
  h.observe(2);
  const std::string text = render_prometheus(reg);
  const std::string expected =
      "# HELP zlb_depth Queue depth\n"
      "# TYPE zlb_depth gauge\n"
      "zlb_depth -3\n"
      "# HELP zlb_lat_seconds Latency\n"
      "# TYPE zlb_lat_seconds histogram\n"
      "zlb_lat_seconds_bucket{le=\"0.5\"} 1\n"
      "zlb_lat_seconds_bucket{le=\"1\"} 3\n"
      "zlb_lat_seconds_bucket{le=\"+Inf\"} 3\n"
      "zlb_lat_seconds_sum 2.5\n"
      "zlb_lat_seconds_count 3\n"
      "# HELP zlb_msgs_total Messages\n"
      "# TYPE zlb_msgs_total counter\n"
      "zlb_msgs_total{dir=\"sent\"} 5\n";
  EXPECT_EQ(text, expected);
}

TEST(Exposition, JsonGoldenAndRoundTrip) {
  Registry reg;
  reg.counter("zlb_msgs_total", "Messages", {{"dir", "sent"}}).inc(5);
  // One observation of raw 1 in bucket (0, 1]: the interpolated
  // quantiles are exactly q, binary-exact at every printed digit.
  Histogram& h = reg.histogram("zlb_lat_seconds", "Latency", 1.0);
  h.observe(1);
  const std::string json = render_json(reg);
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"zlb_lat_seconds\",\"type\":\"histogram\",\"labels\":{}"
      ",\"count\":1,\"sum\":1,\"buckets\":[[1,1]]"
      ",\"p50\":0.5,\"p90\":0.9,\"p99\":0.99},"
      "{\"name\":\"zlb_msgs_total\",\"type\":\"counter\","
      "\"labels\":{\"dir\":\"sent\"},\"value\":5}"
      "]}";
  EXPECT_EQ(json, expected);

  // Round-trip: the rendered doubles must parse back to the exact
  // values (fmt_double promises shortest-round-trip forms).
  double p90 = 0.0;
  ASSERT_EQ(std::sscanf(json.c_str() + json.find("\"p90\":") + 6, "%lf",
                        &p90),
            1);
  EXPECT_EQ(p90, 0.9);

  // Escaping: label values with quotes/newlines stay valid JSON.
  Registry esc;
  esc.counter("zlb_esc_total", "h", {{"k", "a\"b\nc"}}).inc(1);
  const std::string esc_json = render_json(esc);
  EXPECT_NE(esc_json.find("a\\\"b\\nc"), std::string::npos);
}

TEST(Tracer, SpansAreDeterministicUnderManualClock) {
  Registry reg;
  common::ManualClock clock(100);
  InstanceTracer tracer(reg, &clock);
  tracer.mark(0, 7, Phase::kPropose);
  clock.advance(2);  // +2s
  tracer.mark(0, 7, Phase::kDeliver);
  clock.advance(1);
  tracer.mark(0, 7, Phase::kDecide);
  tracer.mark(0, 7, Phase::kDecide);  // first mark wins
  clock.advance(1);
  tracer.mark(0, 7, Phase::kApply);
  tracer.finish(0, 7);
  EXPECT_EQ(tracer.finished(), 1u);

  const auto recent = tracer.recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].instance, 7u);
  const auto at = [&](Phase p) {
    return recent[0].at_ns[static_cast<std::size_t>(p)];
  };
  EXPECT_EQ(at(Phase::kPropose), 100'000'000'000);
  EXPECT_EQ(at(Phase::kDecide), 103'000'000'000);
  EXPECT_EQ(at(Phase::kSubmit), -1);  // never reached

  // decide latency = decide - propose = 3s, fed once.
  bool found = false;
  for (const auto& s : reg.samples()) {
    if (s.name == "zlb_decide_latency_seconds") {
      found = true;
      EXPECT_EQ(s.hist.count, 1u);
      EXPECT_NEAR(s.hist.quantile(0.5) * s.scale, 3.0, 3.0 * 0.26);
    }
  }
  EXPECT_TRUE(found);

  // Abandoned spans record nothing.
  tracer.mark(1, 9, Phase::kPropose);
  tracer.abandon(1, 9);
  tracer.finish(1, 9);  // no-op: already gone
  EXPECT_EQ(tracer.finished(), 1u);
}

}  // namespace
}  // namespace zlb::obs
