// Length-prefix amplification regressions: a decoder must reject a
// count the remaining bytes cannot possibly satisfy BEFORE allocating
// for it. Each test hand-crafts a tiny frame whose count field claims a
// huge sequence — pre-fix, these reserve()d gigabytes off a few wire
// bytes; post-fix Reader::length_prefix throws first. Truncation sweeps
// check the same property at every prefix of a valid encoding.
#include <gtest/gtest.h>

#include <functional>

#include "asmr/payload.hpp"
#include "chain/block.hpp"
#include "chain/journal.hpp"
#include "chain/tx.hpp"
#include "common/serde.hpp"
#include "consensus/messages.hpp"
#include "consensus/pof.hpp"
#include "sync/frames.hpp"

namespace zlb {
namespace {

Bytes with_huge_count(const std::function<void(Writer&)>& prefix) {
  Writer w;
  prefix(w);
  w.varint(0xffffffffu);  // claims ~4e9 elements with no bytes behind it
  return w.take();
}

TEST(DecodeBounds, LengthPrefixRejectsUnsatisfiableCount) {
  Writer w;
  w.varint(1000);
  w.u32(7);  // only 4 bytes of payload for a claimed 1000 entries
  Reader r(BytesView(w.data().data(), w.data().size()));
  EXPECT_THROW((void)r.length_prefix(4, 1u << 20), DecodeError);
}

TEST(DecodeBounds, LengthPrefixRejectsOverLimitCount) {
  Writer w;
  w.varint(50);
  for (int i = 0; i < 50; ++i) w.u32(static_cast<std::uint32_t>(i));
  Reader r(BytesView(w.data().data(), w.data().size()));
  EXPECT_THROW((void)r.length_prefix(4, 10), DecodeError);
}

TEST(DecodeBounds, LengthPrefixAcceptsSatisfiableCount) {
  Writer w;
  w.varint(3);
  for (int i = 0; i < 3; ++i) w.u32(static_cast<std::uint32_t>(i));
  Reader r(BytesView(w.data().data(), w.data().size()));
  EXPECT_EQ(r.length_prefix(4, 1u << 20), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i));
  }
}

TEST(DecodeBounds, ReplicaIdsRejectHugeCount) {
  const Bytes data = with_huge_count([](Writer&) {});
  EXPECT_THROW((void)asmr::decode_replica_ids(
                   BytesView(data.data(), data.size())),
               DecodeError);
}

TEST(DecodeBounds, BlockRejectsHugeTxCount) {
  const Bytes data = with_huge_count([](Writer& w) {
    w.u64(1);   // index
    w.u32(0);   // slot
    w.u32(0);   // proposer
  });
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_THROW((void)chain::Block::deserialize(r), DecodeError);
}

TEST(DecodeBounds, TransactionRejectsHugeInputCount) {
  const Bytes data = with_huge_count([](Writer& w) {
    w.u64(0);  // seq
  });
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_THROW((void)chain::Transaction::deserialize(r), DecodeError);
}

TEST(DecodeBounds, EpochRecordRejectsHugeMemberCount) {
  const Bytes data = with_huge_count([](Writer& w) {
    w.u32(1);  // epoch
    w.u64(0);  // start_index
  });
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_THROW((void)chain::EpochRecord::deserialize(r), DecodeError);
}

TEST(DecodeBounds, SlotCertRejectsHugeVoteCount) {
  const Bytes data = with_huge_count([](Writer& w) {
    w.u32(0);  // slot
    w.u32(0);  // round
    w.u8(1);   // value
  });
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_THROW((void)consensus::SlotCert::decode(r), DecodeError);
}

TEST(DecodeBounds, EvidenceRejectsHugeVoteCount) {
  const Bytes data = with_huge_count([](Writer& w) {
    consensus::InstanceKey{}.encode(w);
    w.u32(0);  // slot
  });
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_THROW((void)consensus::EvidenceMsg::decode(r), DecodeError);
}

TEST(DecodeBounds, PofsRejectHugeCount) {
  const Bytes data = with_huge_count([](Writer&) {});
  EXPECT_THROW((void)consensus::decode_pofs(
                   BytesView(data.data(), data.size())),
               DecodeError);
}

TEST(DecodeBounds, ExclusionClaimRejectsHugeCount) {
  const Bytes data = with_huge_count([](Writer& w) {
    w.u64(42);  // ceiling
  });
  EXPECT_THROW((void)consensus::ExclusionClaim::decode(
                   BytesView(data.data(), data.size())),
               DecodeError);
}

TEST(DecodeBounds, EpochAnnounceRejectsHugeMemberCount) {
  const Bytes data = with_huge_count([](Writer& w) {
    w.u32(0);  // sender
    w.u32(2);  // epoch
    w.u64(9);  // start_index
  });
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_THROW((void)consensus::EpochAnnounceMsg::decode(r), DecodeError);
}

// Every strict prefix of a valid encoding must throw DecodeError, and
// with the count guards no prefix may allocate past the buffer first.
template <typename DecodeFn>
void truncation_sweep(const Bytes& full, DecodeFn&& decode) {
  for (std::size_t len = 0; len < full.size(); ++len) {
    Reader r(BytesView(full.data(), len));
    bool threw = false;
    try {
      decode(r);
      // Some prefixes decode (e.g. optional trailing sections); the
      // decoder itself must then report trailing state via done().
    } catch (const DecodeError&) {
      threw = true;
    }
    if (!threw) {
      // A successful parse of a strict prefix must have consumed it
      // fully — partial consumption means a lost length check.
      EXPECT_TRUE(r.done()) << "prefix " << len << " of " << full.size();
    }
  }
}

TEST(DecodeBounds, TruncatedEpochAnnounceAlwaysThrows) {
  consensus::EpochAnnounceMsg m;
  m.sender = 3;
  m.epoch = 7;
  m.start_index = 100;
  m.members = {1, 2, 3, 4};
  m.excluded = {9};
  m.signature = Bytes{0xde, 0xad, 0xbe, 0xef};
  Writer w;
  m.encode(w);
  const Bytes full = w.take();
  truncation_sweep(full, [](Reader& r) {
    (void)consensus::EpochAnnounceMsg::decode(r);
  });
}

TEST(DecodeBounds, TruncatedBlockAlwaysThrows) {
  chain::Block b;
  b.index = 5;
  b.slot = 2;
  b.proposer = 1;
  b.txs.emplace_back();
  const Bytes full = b.serialize();
  truncation_sweep(full, [](Reader& r) {
    (void)chain::Block::deserialize(r);
  });
}

TEST(DecodeBounds, TruncatedSnapshotChunkAlwaysThrows) {
  sync::SnapshotChunk c;
  c.upto = 11;
  c.index = 0;
  c.data = Bytes{1, 2, 3, 4, 5};
  c.proof.push_back(crypto::Hash32{});
  Writer w;
  c.encode(w);
  const Bytes full = w.take();
  truncation_sweep(full, [](Reader& r) {
    (void)sync::SnapshotChunk::decode(r);
  });
}

}  // namespace
}  // namespace zlb
