// SHA-256 / HMAC-SHA256 against FIPS-180-4 and RFC-4231 test vectors.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace zlb::crypto {
namespace {

Bytes str(const char* s) { return to_bytes(s); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(sha256(str(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex(sha256(str("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex(sha256(str(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.update(BytesView(chunk.data(), chunk.size()));
  }
  EXPECT_EQ(hash_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = str("the quick brown fox jumps over the lazy dog etc.");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(BytesView(msg.data(), split));
    ctx.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finish(), sha256(BytesView(msg.data(), msg.size())));
  }
}

TEST(Sha256, DoubleHashDiffersFromSingle) {
  const Bytes msg = str("abc");
  EXPECT_NE(sha256d(BytesView(msg.data(), msg.size())),
            sha256(BytesView(msg.data(), msg.size())));
}

// RFC 4231 test case 2 (short key).
TEST(HmacSha256, Rfc4231Case2) {
  const Bytes key = str("Jefe");
  const Bytes data = str("what do ya want for nothing?");
  EXPECT_EQ(hash_hex(hmac_sha256(BytesView(key.data(), key.size()),
                                 BytesView(data.data(), data.size()))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = str("Hi There");
  EXPECT_EQ(hash_hex(hmac_sha256(BytesView(key.data(), key.size()),
                                 BytesView(data.data(), data.size()))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacSha256, LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes data =
      str("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hash_hex(hmac_sha256(BytesView(key.data(), key.size()),
                                 BytesView(data.data(), data.size()))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace zlb::crypto
