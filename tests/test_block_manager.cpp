// Blockchain Manager (Alg. 2): block merge, deposit funding of
// conflicting inputs, deposit refunding, punished accounts and
// idempotence — the machinery behind Table 1 and the zero-loss claim.
#include <gtest/gtest.h>

#include "bm/block_manager.hpp"
#include "chain/wallet.hpp"

namespace zlb::bm {
namespace {

using chain::Amount;
using chain::Block;
using chain::Transaction;
using chain::Wallet;

class BmFixture : public ::testing::Test {
 protected:
  BmFixture()
      : alice(to_bytes("alice")),
        bob(to_bytes("bob")),
        carol(to_bytes("carol")) {
    bm.utxos().mint(alice.address(), 1000);
    bm.fund_deposit(5000);
  }

  Block block_with(std::initializer_list<Transaction> txs, InstanceId index,
                   std::uint32_t slot = 0) {
    Block b;
    b.index = index;
    b.slot = slot;
    for (const auto& tx : txs) b.txs.push_back(tx);
    return b;
  }

  BlockManager bm;
  Wallet alice, bob, carol;
};

TEST_F(BmFixture, CommitAppliesValidTransactions) {
  const auto tx = alice.pay(bm.utxos(), bob.address(), 400);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(bm.commit_block(block_with({*tx}, 0), true), 1u);
  EXPECT_EQ(bm.utxos().balance(bob.address()), 400);
  EXPECT_TRUE(bm.knows_tx(tx->id()));
  EXPECT_EQ(bm.store().size(), 1u);
}

TEST_F(BmFixture, CommitSkipsInvalid) {
  auto tx = alice.pay(bm.utxos(), bob.address(), 400);
  tx->inputs[0].sig[0] ^= 1;
  EXPECT_EQ(bm.commit_block(block_with({*tx}, 0), true), 0u);
  EXPECT_EQ(bm.utxos().balance(bob.address()), 0);
}

TEST_F(BmFixture, MergeFundsConflictingInputFromDeposit) {
  // The double-spend scenario of Fig. 1: Alice pays Bob in one branch
  // and Carol in the other; the merge funds the loser from the deposit.
  const auto coins = bm.utxos().owned_by(alice.address());
  const Transaction to_bob = alice.pay_from(coins, bob.address(), 1000);
  const Transaction to_carol = alice.pay_from(coins, carol.address(), 1000);

  EXPECT_EQ(bm.commit_block(block_with({to_bob}, 3, 0), true), 1u);
  bm.merge_block(block_with({to_carol}, 3, 1));

  // Both recipients end up paid (no honest loss)...
  EXPECT_EQ(bm.utxos().balance(bob.address()), 1000);
  EXPECT_EQ(bm.utxos().balance(carol.address()), 1000);
  // ...with the second payment financed by the deposit.
  EXPECT_EQ(bm.deposit(), 4000);
  EXPECT_EQ(bm.stats().conflicting_inputs, 1u);
  EXPECT_EQ(bm.stats().deposit_spent, 1000);
  // The fork is recorded as two branches at index 3.
  EXPECT_EQ(bm.store().branches_at(3), 2u);
}

TEST_F(BmFixture, MergeIsIdempotent) {
  const auto coins = bm.utxos().owned_by(alice.address());
  const Transaction to_bob = alice.pay_from(coins, bob.address(), 1000);
  const Transaction to_carol = alice.pay_from(coins, carol.address(), 1000);
  bm.commit_block(block_with({to_bob}, 0, 0), true);
  const Block conflicting = block_with({to_carol}, 0, 1);
  bm.merge_block(conflicting);
  const Amount deposit_after = bm.deposit();
  const Amount carol_after = bm.utxos().balance(carol.address());
  bm.merge_block(conflicting);  // replay: txs already known
  EXPECT_EQ(bm.deposit(), deposit_after);
  EXPECT_EQ(bm.utxos().balance(carol.address()), carol_after);
}

TEST_F(BmFixture, MergeOrderIndependentBalances) {
  // Merging branch A then B yields the same balances as B then A.
  const auto coins = bm.utxos().owned_by(alice.address());
  const Transaction to_bob = alice.pay_from(coins, bob.address(), 1000);
  const Transaction to_carol = alice.pay_from(coins, carol.address(), 1000);

  BlockManager bm2;
  bm2.utxos().mint(alice.address(), 1000);  // same deterministic outpoint
  bm2.fund_deposit(5000);

  bm.commit_block(block_with({to_bob}, 0, 0), true);
  bm.merge_block(block_with({to_carol}, 0, 1));

  bm2.commit_block(block_with({to_carol}, 0, 1), true);
  bm2.merge_block(block_with({to_bob}, 0, 0));

  for (const auto& w : {&bob, &carol, &alice}) {
    EXPECT_EQ(bm.utxos().balance(w->address()),
              bm2.utxos().balance(w->address()));
  }
  EXPECT_EQ(bm.deposit(), bm2.deposit());
}

TEST_F(BmFixture, RefundInputsRefillsDeposit) {
  // A conflicting input funded by the deposit becomes spendable again
  // (its branch's producing tx arrives later): the deposit is refilled.
  const auto coins = bm.utxos().owned_by(alice.address());
  const Transaction to_bob = alice.pay_from(coins, bob.address(), 1000);
  // Carol's branch contains a chain: alice->bob' (different tx) then a
  // tx spending an output that does not exist yet on this replica.
  Wallet dave(to_bytes("dave"));
  // tx1 gives dave 700 (will arrive later).
  const Transaction tx1 = alice.pay_from(coins, dave.address(), 700);
  // tx2 spends dave's output from tx1.
  chain::UtxoSet scratch;
  scratch.mint(alice.address(), 1000);
  // Build tx2 against a scratch set where tx1 applied.
  chain::UtxoSet scratch2;
  scratch2.insert_outputs(tx1);
  const auto dave_coins = scratch2.owned_by(dave.address());
  ASSERT_FALSE(dave_coins.empty());
  const Transaction tx2 = dave.pay_from(dave_coins, carol.address(), 700);

  bm.commit_block(block_with({to_bob}, 0, 0), true);
  // Merge a conflicting block containing ONLY tx2 (its parent tx1 is
  // unknown): input funded from deposit.
  bm.merge_block(block_with({tx2}, 0, 1));
  EXPECT_EQ(bm.deposit(), 5000 - 700);
  EXPECT_EQ(bm.utxos().balance(carol.address()), 700);
  // Now the other branch block with tx1 arrives: its output (dave's
  // coin) appears — RefundInputs consumes it and refills the deposit.
  // tx1 itself double-spends the genesis coin (1000 from the deposit)
  // while its arrival lets RefundInputs claw back tx2's 700.
  bm.merge_block(block_with({tx1}, 1, 0));
  EXPECT_EQ(bm.deposit(), 5000 - 700 - 1000 + 700);
  EXPECT_EQ(bm.stats().deposit_refunded, 700);
  // Dave's double-spent coin is gone (consumed by the refund).
  EXPECT_EQ(bm.utxos().balance(dave.address()), 0);
}

TEST_F(BmFixture, PunishedAccountsPropagate) {
  const auto coins = bm.utxos().owned_by(alice.address());
  bm.punish_account(bob.address());
  const Transaction to_bob = alice.pay_from(coins, bob.address(), 500);
  bm.merge_block(block_with({to_bob}, 0, 0));
  EXPECT_TRUE(bm.is_punished(bob.address()));
}

TEST_F(BmFixture, OutputValueLookup) {
  const auto coins = bm.utxos().owned_by(alice.address());
  const Transaction tx = alice.pay_from(coins, bob.address(), 250);
  bm.commit_block(block_with({tx}, 0), true);
  const chain::OutPoint op{tx.id(), 0};
  EXPECT_EQ(bm.output_value(op).value_or(-1), 250);
  // Spent outputs remain resolvable (needed to price conflicts).
  const chain::OutPoint genesis = coins.front().first;
  EXPECT_EQ(bm.output_value(genesis).value_or(-1), 1000);
  EXPECT_FALSE(bm.output_value(chain::OutPoint{}).has_value());
}

TEST_F(BmFixture, DeepForkMergeManyConflicts) {
  // K conflicting pairs: every input in the merged block conflicts.
  BlockManager big;
  big.fund_deposit(1'000'000);
  Wallet payer(to_bytes("payer"));
  std::vector<Transaction> branch_a, branch_b;
  for (int i = 0; i < 50; ++i) {
    chain::UtxoSet& u = big.utxos();
    const auto op = u.mint(payer.address(), 100);
    (void)op;
  }
  const auto coins = big.utxos().owned_by(payer.address());
  ASSERT_EQ(coins.size(), 50u);
  for (const auto& coin : coins) {
    branch_a.push_back(payer.pay_from(std::vector<std::pair<chain::OutPoint, chain::TxOut>>{coin}, bob.address(), 100));
    branch_b.push_back(payer.pay_from(std::vector<std::pair<chain::OutPoint, chain::TxOut>>{coin}, carol.address(), 100));
  }
  Block a;
  a.index = 0;
  a.txs = branch_a;
  Block b;
  b.index = 0;
  b.slot = 1;
  b.txs = branch_b;
  big.commit_block(a, true);
  big.merge_block(b);
  EXPECT_EQ(big.utxos().balance(bob.address()), 5000);
  EXPECT_EQ(big.utxos().balance(carol.address()), 5000);
  EXPECT_EQ(big.stats().conflicting_inputs, 50u);
  EXPECT_EQ(big.deposit(), 1'000'000 - 5000);
}

}  // namespace
}  // namespace zlb::bm
