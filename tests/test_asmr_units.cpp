// ASMR payload codecs and the deterministic inclusion choice (Alg. 1
// line 44).
#include <gtest/gtest.h>

#include "asmr/payload.hpp"
#include "common/rng.hpp"

namespace zlb::asmr {
namespace {

TEST(BatchPayload, SyntheticRoundtrip) {
  BatchPayload p;
  p.synthetic = true;
  p.tx_count = 10000;
  p.proposer = 42;
  p.index = 7;
  p.tag = 3;
  const Bytes wire = p.encode();
  const BatchPayload back =
      BatchPayload::decode(BytesView(wire.data(), wire.size()));
  EXPECT_TRUE(back.synthetic);
  EXPECT_EQ(back.tx_count, 10000u);
  EXPECT_EQ(back.proposer, 42u);
  EXPECT_EQ(back.index, 7u);
  EXPECT_EQ(back.tag, 3u);
}

TEST(BatchPayload, TagChangesDigest) {
  BatchPayload a;
  a.synthetic = true;
  a.tx_count = 100;
  BatchPayload b = a;
  b.tag = 1;
  EXPECT_NE(crypto::sha256(BytesView(a.encode().data(), a.encode().size())),
            crypto::sha256(BytesView(b.encode().data(), b.encode().size())));
}

TEST(BatchPayload, MalformedThrows) {
  const Bytes junk = {0x02, 0x03};
  EXPECT_THROW((void)BatchPayload::decode(BytesView(junk.data(), junk.size())),
               DecodeError);
}

TEST(ReplicaIds, Roundtrip) {
  const std::vector<ReplicaId> ids{9, 1, 5};
  const Bytes wire = encode_replica_ids(ids);
  EXPECT_EQ(decode_replica_ids(BytesView(wire.data(), wire.size())), ids);
}

TEST(ChooseInclusion, SpreadsEvenlyAcrossProposals) {
  // Three decided proposals, choose 3: one candidate from each.
  const std::vector<std::vector<ReplicaId>> proposals{
      {10, 11, 12}, {20, 21, 22}, {30, 31, 32}};
  const auto chosen = choose_inclusion(3, proposals, {});
  EXPECT_EQ(chosen, (std::vector<ReplicaId>{10, 20, 30}));
}

TEST(ChooseInclusion, SkipsDuplicatesAndBanned) {
  const std::vector<std::vector<ReplicaId>> proposals{
      {10, 11, 12}, {10, 21, 22}};
  const auto chosen = choose_inclusion(3, proposals, {21});
  // 10 once, 21 banned -> falls back to next offsets.
  EXPECT_EQ(chosen.size(), 3u);
  EXPECT_EQ(std::count(chosen.begin(), chosen.end(), 10), 1);
  EXPECT_EQ(std::count(chosen.begin(), chosen.end(), 21), 0);
}

TEST(ChooseInclusion, Deterministic) {
  const std::vector<std::vector<ReplicaId>> proposals{
      {3, 1, 4}, {1, 5, 9}, {2, 6, 5}};
  EXPECT_EQ(choose_inclusion(4, proposals, {}),
            choose_inclusion(4, proposals, {}));
}

TEST(ChooseInclusion, InsufficientCandidatesReturnsWhatExists) {
  const std::vector<std::vector<ReplicaId>> proposals{{7}, {7}};
  const auto chosen = choose_inclusion(5, proposals, {});
  EXPECT_EQ(chosen, (std::vector<ReplicaId>{7}));
}

TEST(ChooseInclusion, EmptyProposals) {
  EXPECT_TRUE(choose_inclusion(3, {}, {}).empty());
}

TEST(ChooseInclusion, CapIsRespected) {
  const std::vector<std::vector<ReplicaId>> proposals{
      {1, 2, 3, 4, 5, 6, 7, 8}};
  EXPECT_EQ(choose_inclusion(2, proposals, {}).size(), 2u);
}

class ChooseFairness : public ::testing::TestWithParam<std::uint64_t> {};

// The §4.1.1 ④ fairness property under random proposals: no single
// decided proposal contributes more than its even share (±1, and ±the
// slack created by duplicates/bans), so a deceitful proposer cannot
// pack the inclusion with its own candidates.
TEST_P(ChooseFairness, NoProposalDominates) {
  Rng rng(GetParam());
  const std::size_t proposal_count = 2 + rng.next() % 5;   // 2..6
  const std::size_t per_proposal = 3 + rng.next() % 4;     // 3..6
  std::vector<std::vector<ReplicaId>> proposals(proposal_count);
  for (std::size_t p = 0; p < proposal_count; ++p) {
    for (std::size_t i = 0; i < per_proposal; ++i) {
      // Disjoint candidate pools: the clean case where the even-share
      // bound is exact.
      proposals[p].push_back(
          static_cast<ReplicaId>(100 * (p + 1) + i));
    }
  }
  const std::size_t want = 1 + rng.next() % (proposal_count * per_proposal);
  const auto chosen = choose_inclusion(want, proposals, {});
  ASSERT_EQ(chosen.size(), std::min(want, proposal_count * per_proposal));

  const std::size_t fair_share =
      (chosen.size() + proposal_count - 1) / proposal_count;
  for (std::size_t p = 0; p < proposal_count; ++p) {
    std::size_t from_p = 0;
    for (ReplicaId id : chosen) {
      if (id / 100 == p + 1) ++from_p;
    }
    EXPECT_LE(from_p, fair_share + 1)
        << "proposal " << p << " dominated the inclusion";
  }
  // And the result is duplicate-free.
  auto sorted = chosen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChooseFairness,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace zlb::asmr
