// Payment lifecycle with finalization blockdepth (§B), and the random
// beacon / sortition extension (§B discussion).
#include <gtest/gtest.h>

#include <cmath>

#include "asmr/beacon.hpp"
#include "payment/payment_system.hpp"

namespace zlb {
namespace {

using payment::EscrowPolicy;
using payment::PaymentState;
using payment::PaymentTracker;

chain::TxId tx_id(int i) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(i));
  return crypto::sha256(BytesView(w.data().data(), w.data().size()));
}

TEST(EscrowPolicy, DepthMatchesTheorem) {
  EscrowPolicy p;
  p.branches = 3;
  p.deposit_factor = 0.1;
  p.attack_success = 0.55;
  EXPECT_EQ(p.finalization_depth(), 5);
  p.attack_success = 0.9;
  EXPECT_EQ(p.finalization_depth(), 28);
  EXPECT_NEAR(p.stake_per_replica(90), 3 * 0.1 * p.gain_bound / 90, 1e-9);
}

TEST(PaymentTracker, LifecyclePendingCommittedFinal) {
  EscrowPolicy p;
  p.attack_success = 0.5;  // depth 4 (a=3, b=0.1)
  PaymentTracker tracker(p);
  const int m = tracker.finalization_depth();
  ASSERT_GT(m, 0);

  const auto id = tx_id(1);
  tracker.submit(id);
  EXPECT_EQ(tracker.state(id), PaymentState::kPending);
  EXPECT_EQ(tracker.pending_count(), 1u);

  tracker.committed(id, 10);
  EXPECT_EQ(tracker.state(id), PaymentState::kCommitted);
  EXPECT_EQ(tracker.blocks_remaining(id, 10), m);

  // Not final until the chain is m past the commit index.
  EXPECT_TRUE(tracker.advance(10 + m - 1).empty());
  EXPECT_EQ(tracker.state(id), PaymentState::kCommitted);
  const auto finalized = tracker.advance(10 + m);
  ASSERT_EQ(finalized.size(), 1u);
  EXPECT_EQ(finalized[0], id);
  EXPECT_TRUE(tracker.is_final(id));
  EXPECT_EQ(tracker.blocks_remaining(id, 10 + m), -1);  // no longer waiting
}

TEST(PaymentTracker, RefundedPaymentsNeverFinalize) {
  PaymentTracker tracker(EscrowPolicy{});
  const auto id = tx_id(2);
  tracker.submit(id);
  tracker.committed(id, 0);
  tracker.refunded(id);
  EXPECT_EQ(tracker.state(id), PaymentState::kRefunded);
  EXPECT_TRUE(tracker.advance(1000).empty());
}

TEST(PaymentTracker, BatchFinalization) {
  EscrowPolicy p;
  p.attack_success = 0.5;
  PaymentTracker tracker(p);
  const int m = tracker.finalization_depth();
  for (int i = 0; i < 10; ++i) {
    tracker.submit(tx_id(i));
    tracker.committed(tx_id(i), static_cast<InstanceId>(i));
  }
  // Advancing to height m finalizes exactly the tx committed at 0.
  EXPECT_EQ(tracker.advance(m).size(), 1u);
  // Height m+9 finalizes the rest.
  EXPECT_EQ(tracker.advance(m + 9).size(), 9u);
  EXPECT_EQ(tracker.final_count(), 10u);
}

TEST(Beacon, DeterministicAndSensitive) {
  asmr::RandomBeacon a(to_bytes("genesis"));
  asmr::RandomBeacon b(to_bytes("genesis"));
  EXPECT_EQ(a.value(), b.value());
  a.absorb(crypto::sha256(to_bytes("block-1")));
  EXPECT_NE(a.value(), b.value());
  b.absorb(crypto::sha256(to_bytes("block-1")));
  EXPECT_EQ(a.value(), b.value());
  b.absorb(crypto::sha256(to_bytes("block-2")));
  EXPECT_NE(a.value(), b.value());
}

TEST(Sortition, SamplesCommitteeDeterministically) {
  asmr::RandomBeacon beacon(to_bytes("seed"));
  std::vector<ReplicaId> universe;
  for (ReplicaId i = 0; i < 100; ++i) universe.push_back(i);
  const auto c1 = asmr::sortition(beacon, universe, 10);
  const auto c2 = asmr::sortition(beacon, universe, 10);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1.size(), 10u);
  // Distinct members, all from the universe.
  for (std::size_t i = 1; i < c1.size(); ++i) EXPECT_LT(c1[i - 1], c1[i]);
  for (ReplicaId id : c1) EXPECT_LT(id, 100u);
  // A different beacon state yields a different committee (w.h.p.).
  asmr::RandomBeacon other(to_bytes("seed"));
  other.absorb(crypto::sha256(to_bytes("x")));
  EXPECT_NE(asmr::sortition(other, universe, 10), c1);
}

TEST(Sortition, CommitteeLargerThanUniverseIsClamped) {
  asmr::RandomBeacon beacon(to_bytes("seed"));
  EXPECT_EQ(asmr::sortition(beacon, {1, 2, 3}, 10).size(), 3u);
}

TEST(TakeoverProbability, ExactSmallCases) {
  // Universe 4, colluders 1, committee 4: P(>= 2 colluder seats) = 0.
  EXPECT_DOUBLE_EQ(asmr::coalition_takeover_probability(4, 1, 4), 0.0);
  // Universe 4, colluders 2, committee 4: always exactly 2 >= ⌈4/3⌉ = 2.
  EXPECT_NEAR(asmr::coalition_takeover_probability(4, 2, 4), 1.0, 1e-12);
  // Committee = universe: deterministic.
  EXPECT_NEAR(asmr::coalition_takeover_probability(90, 30, 90), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(asmr::coalition_takeover_probability(90, 29, 90), 0.0);
}

TEST(TakeoverProbability, MonotoneInColluders) {
  double prev = 0.0;
  for (std::size_t c = 10; c <= 60; c += 10) {
    const double p = asmr::coalition_takeover_probability(300, c, 30);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  // 60/300 = 20% colluders against a 1/3-seat threshold stays unlikely.
  EXPECT_LT(prev, 0.2);
  EXPECT_GT(prev, 0.0);
}

TEST(AttackWindow, BeaconReducesSuccessExponentially) {
  // §B: with a fresh sorted committee per block, sustaining a fork for
  // the whole finalization window requires corrupting every committee.
  const double one = asmr::coalition_takeover_probability(300, 120, 30);
  ASSERT_GT(one, 0.0);
  ASSERT_LT(one, 1.0);
  const double w4 = asmr::attack_window_success(300, 120, 30, 4);
  EXPECT_NEAR(w4, std::pow(one, 5), 1e-12);
  EXPECT_LT(w4, one);
  // Deeper finalization: strictly safer.
  EXPECT_LT(asmr::attack_window_success(300, 120, 30, 10), w4);
}

}  // namespace
}  // namespace zlb
