# ZLB invariant linter integration (tools/lint/zlb_lint.py).
#
# Adds, when a Python3 interpreter exists:
#   - a `zlb_lint` custom target (manual: `cmake --build build -t zlb_lint`)
#   - two ctest entries:
#       zlb_lint_src       src/ must be clean under the allowlist
#       zlb_lint_fixtures  every known-bad fixture must still fail with
#                          its rule, and the allowlist must stay
#                          load-bearing (see tools/lint/test_zlb_lint.py)
#
# Without Python3 the linter is skipped with a notice — it gates CI
# (which always has an interpreter), not local builds on bare boxes.

find_package(Python3 COMPONENTS Interpreter QUIET)

if(NOT Python3_Interpreter_FOUND)
  message(STATUS "Python3 not found — zlb_lint target and tests disabled")
  return()
endif()

set(ZLB_LINT_SCRIPT "${CMAKE_CURRENT_SOURCE_DIR}/tools/lint/zlb_lint.py")
set(ZLB_LINT_ALLOW "${CMAKE_CURRENT_SOURCE_DIR}/tools/lint/zlb_lint_allow.txt")
set(ZLB_LINT_SELFTEST "${CMAKE_CURRENT_SOURCE_DIR}/tools/lint/test_zlb_lint.py")

add_custom_target(zlb_lint
  COMMAND "${Python3_EXECUTABLE}" "${ZLB_LINT_SCRIPT}"
          --root "${CMAKE_CURRENT_SOURCE_DIR}/src"
          --allow "${ZLB_LINT_ALLOW}"
  WORKING_DIRECTORY "${CMAKE_CURRENT_SOURCE_DIR}"
  COMMENT "Running ZLB invariant linter over src/"
  VERBATIM)

if(ZLB_BUILD_TESTS)
  add_test(NAME zlb_lint_src
    COMMAND "${Python3_EXECUTABLE}" "${ZLB_LINT_SCRIPT}"
            --root "${CMAKE_CURRENT_SOURCE_DIR}/src"
            --allow "${ZLB_LINT_ALLOW}")
  add_test(NAME zlb_lint_fixtures
    COMMAND "${Python3_EXECUTABLE}" "${ZLB_LINT_SELFTEST}")
  set_tests_properties(zlb_lint_src zlb_lint_fixtures PROPERTIES
    TIMEOUT 120
    LABELS "lint")
endif()
