# ZLB invariant linter integration (tools/lint/zlb_lint.py).
#
# Adds, when a Python3 interpreter exists:
#   - a `zlb_lint` custom target (manual: `cmake --build build -t zlb_lint`)
#   - two ctest entries:
#       zlb_lint_src       src/ must be clean under the allowlist
#       zlb_lint_fixtures  every known-bad fixture must still fail with
#                          its rule, and the allowlist must stay
#                          load-bearing (see tools/lint/test_zlb_lint.py)
#
# Without Python3 the linter is skipped with a notice — it gates CI
# (which always has an interpreter), not local builds on bare boxes.
# Also adds, when clang-tidy exists: a `zlb_tidy` custom target running
# the curated .clang-tidy profile over src/ and tools/mc/.

find_package(Python3 COMPONENTS Interpreter QUIET)

if(NOT Python3_Interpreter_FOUND)
  message(STATUS "Python3 not found — zlb_lint target and tests disabled")
  return()
endif()

set(ZLB_LINT_SCRIPT "${CMAKE_CURRENT_SOURCE_DIR}/tools/lint/zlb_lint.py")
set(ZLB_LINT_ALLOW "${CMAKE_CURRENT_SOURCE_DIR}/tools/lint/zlb_lint_allow.txt")
set(ZLB_LINT_SELFTEST "${CMAKE_CURRENT_SOURCE_DIR}/tools/lint/test_zlb_lint.py")

add_custom_target(zlb_lint
  COMMAND "${Python3_EXECUTABLE}" "${ZLB_LINT_SCRIPT}"
          --root "${CMAKE_CURRENT_SOURCE_DIR}/src"
          --allow "${ZLB_LINT_ALLOW}"
  WORKING_DIRECTORY "${CMAKE_CURRENT_SOURCE_DIR}"
  COMMENT "Running ZLB invariant linter over src/"
  VERBATIM)

# clang-tidy integration: the curated check profile lives in .clang-tidy
# at the repo root. The target needs compile_commands.json (exported
# unconditionally by the top-level CMakeLists) and is skipped with a
# notice when clang-tidy is not installed — plain local builds never
# require it; CI installs it and runs `cmake --build build -t zlb_tidy`.
find_program(ZLB_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-19
                                      clang-tidy-18 clang-tidy-17)
if(NOT ZLB_CLANG_TIDY_EXE)
  message(STATUS "clang-tidy not found — zlb_tidy target disabled")
else()
  file(GLOB_RECURSE ZLB_TIDY_SOURCES CONFIGURE_DEPENDS
    "${CMAKE_CURRENT_SOURCE_DIR}/src/*.cpp"
    "${CMAKE_CURRENT_SOURCE_DIR}/tools/mc/*.cpp")
  add_custom_target(zlb_tidy
    COMMAND "${ZLB_CLANG_TIDY_EXE}" -p "${CMAKE_BINARY_DIR}" --quiet
            ${ZLB_TIDY_SOURCES}
    WORKING_DIRECTORY "${CMAKE_CURRENT_SOURCE_DIR}"
    COMMENT "clang-tidy (curated bugprone/concurrency/performance profile)"
    VERBATIM)
endif()

if(ZLB_BUILD_TESTS)
  add_test(NAME zlb_lint_src
    COMMAND "${Python3_EXECUTABLE}" "${ZLB_LINT_SCRIPT}"
            --root "${CMAKE_CURRENT_SOURCE_DIR}/src"
            --allow "${ZLB_LINT_ALLOW}")
  add_test(NAME zlb_lint_fixtures
    COMMAND "${Python3_EXECUTABLE}" "${ZLB_LINT_SELFTEST}")
  set_tests_properties(zlb_lint_src zlb_lint_fixtures PROPERTIES
    TIMEOUT 120
    LABELS "lint")
endif()
