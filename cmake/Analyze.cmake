# ZLB semantic analyzer integration (tools/analyze/zlb_analyze.py).
#
# Adds, when a Python3 interpreter exists:
#   - a `zlb_analyze` custom target (manual:
#     `cmake --build build -t zlb_analyze`) running all five checkers
#     (lock-order, epoch-taint, bounded-decode, wire-schema,
#     lock-blocking) over src/ with the allowlist and the committed
#     wire-schema golden
#   - two ctest entries, registered next to zlb_lint_src:
#       zlb_analyze_src       src/ must be clean under the allowlist
#                             and match wire_schema.golden.json
#       zlb_analyze_fixtures  every known-bad fixture must still fail
#                             with its checker, the schema must
#                             round-trip, and the allowlist must stay
#                             load-bearing (tools/analyze/test_zlb_analyze.py)
#
# The analyzer picks its frontend itself: the clang Python bindings +
# compile_commands.json when importable, else the bundled pure-Python
# C++ parser — so these targets never need libclang to pass. Without
# Python3 everything is skipped with a notice, mirroring Lint.cmake.

find_package(Python3 COMPONENTS Interpreter QUIET)

if(NOT Python3_Interpreter_FOUND)
  message(STATUS "Python3 not found — zlb_analyze target and tests disabled")
  return()
endif()

set(ZLB_ANALYZE_SCRIPT
    "${CMAKE_CURRENT_SOURCE_DIR}/tools/analyze/zlb_analyze.py")
set(ZLB_ANALYZE_ALLOW
    "${CMAKE_CURRENT_SOURCE_DIR}/tools/analyze/zlb_analyze_allow.txt")
set(ZLB_ANALYZE_GOLDEN
    "${CMAKE_CURRENT_SOURCE_DIR}/tools/analyze/wire_schema.golden.json")
set(ZLB_ANALYZE_SELFTEST
    "${CMAKE_CURRENT_SOURCE_DIR}/tools/analyze/test_zlb_analyze.py")

add_custom_target(zlb_analyze
  COMMAND "${Python3_EXECUTABLE}" "${ZLB_ANALYZE_SCRIPT}"
          --root "${CMAKE_CURRENT_SOURCE_DIR}/src"
          --allow "${ZLB_ANALYZE_ALLOW}"
          --schema-golden "${ZLB_ANALYZE_GOLDEN}"
          --compdb "${CMAKE_BINARY_DIR}"
          --warn-unused-allow
  WORKING_DIRECTORY "${CMAKE_CURRENT_SOURCE_DIR}"
  COMMENT "Running ZLB semantic analyzer (5 checkers) over src/"
  VERBATIM)

if(ZLB_BUILD_TESTS)
  add_test(NAME zlb_analyze_src
    COMMAND "${Python3_EXECUTABLE}" "${ZLB_ANALYZE_SCRIPT}"
            --root "${CMAKE_CURRENT_SOURCE_DIR}/src"
            --allow "${ZLB_ANALYZE_ALLOW}"
            --schema-golden "${ZLB_ANALYZE_GOLDEN}"
            --compdb "${CMAKE_BINARY_DIR}"
            --warn-unused-allow)
  add_test(NAME zlb_analyze_fixtures
    COMMAND "${Python3_EXECUTABLE}" "${ZLB_ANALYZE_SELFTEST}")
  set_tests_properties(zlb_analyze_src zlb_analyze_fixtures PROPERTIES
    TIMEOUT 300
    LABELS "lint")
endif()
