# Shared compile/link options for every zlb target.
#
# Usage: zlb_apply_options(<target>) — sets the C++20 standard, the
# warning set (warnings are errors), and, when ZLB_SANITIZE is a
# non-empty comma-separated list (e.g. "address,undefined"), the
# matching -fsanitize instrumentation on both compile and link lines.

set(ZLB_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to instrument with (address, undefined, thread, ...)")

# ThreadSanitizer owns the whole shadow-memory layout; combining it
# with ASan/LSan is rejected by the compilers with a link error at
# best. Fail at configure time with a message that says so.
if(ZLB_SANITIZE MATCHES "thread" AND ZLB_SANITIZE MATCHES "address|leak")
  message(FATAL_ERROR
    "ZLB_SANITIZE=${ZLB_SANITIZE}: 'thread' cannot be combined with "
    "'address' or 'leak' — build them in separate trees "
    "(e.g. -B build-tsan -DZLB_SANITIZE=thread).")
endif()

function(zlb_apply_options target)
  target_compile_features(${target} PUBLIC cxx_std_20)
  set_target_properties(${target} PROPERTIES
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    CXX_EXTENSIONS OFF)

  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    # No -Wpedantic: the u256 wide-mul path deliberately uses __int128.
    target_compile_options(${target} PRIVATE
      -Wall -Wextra -Werror)
    if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
      # GCC 12 -O2 false positive on inlined std::string operator+
      # (PR105329); fires inside libstdc++ headers, not our code.
      target_compile_options(${target} PRIVATE -Wno-restrict)
    endif()
  endif()

  if(ZLB_SANITIZE)
    string(REPLACE "," ";" _zlb_san_list "${ZLB_SANITIZE}")
    foreach(_san IN LISTS _zlb_san_list)
      target_compile_options(${target} PRIVATE -fsanitize=${_san}
        -fno-omit-frame-pointer)
      target_link_options(${target} PRIVATE -fsanitize=${_san})
    endforeach()
  endif()
endfunction()
