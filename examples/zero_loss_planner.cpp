// Zero-loss payment planner (§B): given a deceitful ratio δ, a deposit
// factor b = D/G and an attack success probability ρ, computes the
// maximum number of fork branches, the minimum finalization blockdepth
// m for zero-loss (Theorem .5), the tolerated ρ for a given m, and the
// per-replica deposit. Reproduces the paper's worked examples.
//
//   ./zero_loss_planner [n] [gain]
#include <cstdio>
#include <cstdlib>
#include <initializer_list>

#include "payment/zero_loss.hpp"

using namespace zlb::payment;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 100;
  const double gain = argc > 2 ? std::atof(argv[2]) : 1'000'000.0;
  const double b = 0.1;  // the paper's running example: D = G/10

  std::printf("ZLB zero-loss planner — n = %d replicas, per-block gain "
              "bound G = %.0f, deposit D = G/10\n\n",
              n, gain);

  std::printf("%-8s %-10s %-12s %-12s %-14s\n", "delta", "branches",
              "m(rho=0.55)", "m(rho=0.9)", "rho_max(m=4)");
  for (const double delta : {0.40, 0.50, 0.55, 0.60, 0.64, 0.66}) {
    const int f = static_cast<int>(delta * n);
    const int a = max_branches(n, f, 0);
    const int m_low = min_blockdepth(a, b, 0.55);
    const int m_high = min_blockdepth(a, b, 0.9);
    const double rho4 = max_tolerated_rho(a, b, 4);
    std::printf("%-8.2f %-10d %-12d %-12d %-14.3f\n", delta, a, m_low,
                m_high, rho4);
  }

  std::printf("\nPaper cross-check (δ=0.5 ⇒ a=3, b=0.1):\n");
  std::printf("  g(3, 0.1, 0.55, 4) = %+.4f  (paper calls m=4 'already "
              "zero-loss'; exactly, m=5 is the first g>=0)\n",
              g_value(3, 0.1, 0.55, 4));
  std::printf("  g(3, 0.1, 0.55, 5) = %+.4f\n", g_value(3, 0.1, 0.55, 5));
  std::printf("  m(ρ=0.9):  %d  (paper: 28)\n", min_blockdepth(3, 0.1, 0.9));
  std::printf("  δ=0.60 ⇒ a=%d, m = %d (paper: 37)\n",
              max_branches(n, static_cast<int>(0.60 * n), 0),
              min_blockdepth(max_branches(n, static_cast<int>(0.60 * n), 0),
                             b, 0.9));
  std::printf("  δ=0.66 ⇒ a=%d, m = %d (paper: 58)\n",
              max_branches(n, static_cast<int>(0.66 * n), 0),
              min_blockdepth(max_branches(n, static_cast<int>(0.66 * n), 0),
                             b, 0.9));

  const double per_replica = per_replica_deposit(b, gain, n);
  std::printf("\nDeposits: every replica stakes 3bG/n = %.0f coins so any "
              "coalition (>= n/3 replicas) holds at least D = %.0f.\n",
              per_replica, b * gain);

  std::printf("\nExpected deposit flux per attack attempt (a=3, m=5):\n");
  for (const double rho : {0.3, 0.55, 0.7, 0.9}) {
    std::printf("  rho=%.2f: punishment %.0f - gain %.0f = flux %+.0f %s\n",
                rho, expected_punishment(b, rho, 5, gain),
                expected_gain(3, rho, 5, gain),
                deposit_flux(3, b, rho, 5, gain),
                deposit_flux(3, b, rho, 5, gain) >= 0 ? "(zero-loss)"
                                                      : "(LOSS)");
  }
  return 0;
}
