// Committee rotation with the random beacon (the §B future-work
// extension): every decided block feeds the beacon, the beacon sorts
// the next committee out of a large node universe, and a coalition
// that controls a third of the UNIVERSE almost never controls a third
// of EVERY committee across a finalization window. Prints the rotation
// and the analytic window-success numbers next to the static-committee
// baseline.
//
//   ./committee_rotation [universe] [committee] [colluders]
#include <cstdio>
#include <cstdlib>

#include "asmr/beacon.hpp"
#include "crypto/sha256.hpp"
#include "payment/zero_loss.hpp"

using namespace zlb;

int main(int argc, char** argv) {
  const std::size_t universe =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const std::size_t committee =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;
  const std::size_t colluders =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 40;

  std::printf("universe=%zu committee=%zu colluders=%zu (ratio %.2f)\n\n",
              universe, committee, colluders,
              static_cast<double>(colluders) / universe);

  // Rotate committees over 12 "blocks": the beacon absorbs each decided
  // block digest; colluders are ids [0, colluders).
  asmr::RandomBeacon beacon(to_bytes("genesis"));
  std::vector<ReplicaId> nodes;
  for (ReplicaId i = 0; i < universe; ++i) nodes.push_back(i);

  std::printf("block  colluder-seats  threshold(fd)  corrupted?\n");
  int corrupted_rounds = 0;
  for (int block = 0; block < 12; ++block) {
    beacon.absorb(crypto::sha256(to_bytes("block-" + std::to_string(block))));
    const auto seats = asmr::sortition(beacon, nodes, committee);
    std::size_t coalition_seats = 0;
    for (ReplicaId id : seats) coalition_seats += id < colluders ? 1 : 0;
    const std::size_t fd = (committee + 2) / 3;
    const bool corrupt = coalition_seats >= fd;
    corrupted_rounds += corrupt ? 1 : 0;
    std::printf("%5d  %14zu  %13zu  %s\n", block, coalition_seats, fd,
                corrupt ? "YES" : "no");
  }

  // Analytics: per-round takeover probability and the window success
  // for increasing finalization depths, vs the static committee where
  // one corrupted committee stays corrupted for the whole window.
  const double per_round = asmr::coalition_takeover_probability(
      universe, colluders, committee);
  std::printf("\nper-round takeover probability: %.6f\n", per_round);
  std::printf("%-6s %-22s %-22s\n", "m", "rotating (beacon)",
              "static committee");
  for (int m : {0, 1, 2, 4, 8, 16}) {
    std::printf("%-6d %-22.3e %-22.3e\n", m,
                asmr::attack_window_success(universe, colluders, committee, m),
                per_round);
  }

  // Tie-in with Theorem .5: the depth a deployment needs shrinks as the
  // per-window success drops.
  std::printf("\nzero-loss depth (a=3, b=0.1): static rho=%.3f -> m=%d\n",
              per_round, payment::min_blockdepth(3, 0.1, per_round));
  const double rho_rotating =
      asmr::attack_window_success(universe, colluders, committee, 1);
  std::printf("                         rotating rho'=%.3e -> m=%d\n",
              rho_rotating, payment::min_blockdepth(3, 0.1, rho_rotating));
  return 0;
}
