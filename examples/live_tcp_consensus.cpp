// Live deployment example: the same accountable SBC engine that the
// simulator drives, running over REAL TCP sockets on loopback — one
// thread, one event loop, one listener and one secp256k1 ECDSA key per
// replica. Demonstrates the full wire path of §4.2.4 (length-prefixed
// framing over TCP, signed votes, batch digests) and prints per-node
// decisions plus transport statistics.
//
//   ./live_tcp_consensus [n] [instances]
#include <cstdio>
#include <cstdlib>

#include "net/live_node.hpp"

using namespace zlb;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::uint64_t instances =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  std::printf("starting %zu replicas on loopback, %llu instances, "
              "real ECDSA signatures...\n",
              n, static_cast<unsigned long long>(instances));

  net::LiveNodeConfig base;
  base.instances = instances;
  base.use_ecdsa = true;
  net::LiveCluster cluster(n, base);

  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  replica %zu listening on 127.0.0.1:%u\n", i,
                cluster.node(i).port());
    cluster.node(i).queue_payload(
        to_bytes("batch-from-replica-" + std::to_string(i)));
  }

  const auto t0 = net::Clock::now();
  const bool ok = cluster.run(60s);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           net::Clock::now() - t0)
                           .count();
  if (!ok) {
    std::printf("TIMEOUT: not all nodes decided\n");
    return 1;
  }

  std::printf("\nall %zu nodes decided %llu instance(s) in %lld ms\n", n,
              static_cast<unsigned long long>(instances),
              static_cast<long long>(elapsed));

  // Agreement check across nodes, instance by instance.
  bool agree = true;
  for (std::uint64_t k = 0; k < instances; ++k) {
    const net::LiveDecision* ref = nullptr;
    std::vector<net::LiveDecision> store;
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& d : cluster.node(i).decisions()) {
        if (d.index != k) continue;
        if (ref == nullptr) {
          store.push_back(d);
          ref = &store.back();
        } else {
          agree &= d.bitmask == ref->bitmask && d.digests == ref->digests;
        }
      }
    }
    if (ref != nullptr) {
      std::size_t ones = 0;
      for (auto b : ref->bitmask) ones += b;
      std::printf("  instance %llu: %zu/%zu slots decided 1\n",
                  static_cast<unsigned long long>(k), ones, n);
    }
  }

  const auto& stats = cluster.node(0).transport_stats();
  std::printf("\nnode 0 transport: %llu frames out, %llu frames in, "
              "%llu bytes out, %llu bytes in\n",
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.bytes_sent),
              static_cast<unsigned long long>(stats.bytes_received));
  std::printf("agreement across all nodes: %s\n", agree ? "yes" : "NO");
  return agree ? 0 : 1;
}
