// Standalone replica daemon: one OS process per replica, talking to its
// peers over real TCP — the deployment shape of the paper's testbed,
// scaled to one machine. Start n of these (one per committee id) and
// submit payments with zlb_wallet.
//
//   # peers.txt: one "<id> <port>" pair per line, the full universe
//   # (committee plus standby pool)
//   ./zlb_node --id 0 --peers peers.txt --client-port 9100
//              [--genesis <address-hex>:100000] [--journal node0.wal]
//              [--pool 10,11,12,13]
//
// Live reconfiguration: ids named in --pool are the standby pool — not
// committee members, but eligible for inclusion when the committee
// excludes a proven-deceitful coalition. A daemon whose own id is in
// the pool starts passive and activates when t+1 veterans announce its
// admission; it then catches up via checkpoint transfer and serves as
// a full member of epoch e+1.
//
// The node serves until the instance budget is exhausted or SIGINT.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "chain/wallet.hpp"
#include "net/live_node.hpp"

using namespace zlb;

namespace {

struct Options {
  ReplicaId id = 0;
  std::string peers_path;
  std::uint16_t client_port = 0;
  std::string journal_path;
  std::vector<std::pair<chain::Address, chain::Amount>> genesis;
  std::uint64_t instances = 1'000'000;
  int block_interval_ms = 250;
  /// Standby pool ids (comma-separated). Members of the peers file that
  /// are NOT committee members; admitted by the inclusion consensus.
  std::vector<ReplicaId> pool;
  /// Serve Prometheus/JSON metrics on this loopback port (-1 = off,
  /// 0 = ephemeral; the bound port is printed at startup).
  int metrics_port = -1;
  /// Snapshot the ledger (and compact the journal) every this many
  /// decided instances; 0 disables. With a journal the image lands at
  /// <journal>.ckpt and restarts replay only the post-checkpoint tail;
  /// either way the node serves checkpoint transfer to deep laggards.
  std::uint64_t checkpoint_interval = 0;
};

chain::Address parse_address(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  chain::Address a;
  if (raw.size() != a.data.size()) {
    throw std::invalid_argument("address must be 20 bytes of hex");
  }
  std::copy(raw.begin(), raw.end(), a.data.begin());
  return a;
}

bool parse_options(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--id") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.id = static_cast<ReplicaId>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--peers") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.peers_path = v;
    } else if (arg == "--client-port") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.client_port = static_cast<std::uint16_t>(
          std::strtoul(v, nullptr, 10));
    } else if (arg == "--journal") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.journal_path = v;
    } else if (arg == "--instances") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.instances = std::strtoull(v, nullptr, 10);
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.metrics_port = std::atoi(v);
    } else if (arg == "--checkpoint-interval") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.checkpoint_interval = std::strtoull(v, nullptr, 10);
    } else if (arg == "--pool") {
      const char* v = next();
      if (v == nullptr) return false;
      std::istringstream ids(v);
      std::string token;
      while (std::getline(ids, token, ',')) {
        if (token.empty()) continue;
        char* end = nullptr;
        const unsigned long id = std::strtoul(token.c_str(), &end, 10);
        if (end == token.c_str() || *end != '\0') {
          std::fprintf(stderr, "bad --pool id: '%s'\n", token.c_str());
          return false;
        }
        opts.pool.push_back(static_cast<ReplicaId>(id));
      }
    } else if (arg == "--block-interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.block_interval_ms = std::atoi(v);
    } else if (arg == "--genesis") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string spec(v);
      const auto colon = spec.find(':');
      if (colon == std::string::npos) return false;
      opts.genesis.emplace_back(
          parse_address(spec.substr(0, colon)),
          static_cast<chain::Amount>(
              std::strtoll(spec.c_str() + colon + 1, nullptr, 10)));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts.peers_path.empty();
}

/// peers.txt: "<id> <port>" per line; this node's line fixes its own
/// listen port.
bool load_peers(const std::string& path, ReplicaId me,
                std::map<ReplicaId, std::uint16_t>& ports,
                std::vector<ReplicaId>& committee,
                std::uint16_t& my_port) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    ReplicaId id = 0;
    std::uint32_t port = 0;
    if (!(ls >> id >> port)) return false;
    ports[id] = static_cast<std::uint16_t>(port);
    committee.push_back(id);
  }
  const auto mine = ports.find(me);
  if (mine == ports.end()) return false;
  my_port = mine->second;
  return committee.size() >= 4;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_options(argc, argv, opts)) {
    std::fprintf(
        stderr,
        "usage: zlb_node --id <n> --peers <file> [--client-port <p>]\n"
        "                [--journal <path>] [--genesis <addr-hex>:<amount>]\n"
        "                [--instances <n>] [--block-interval-ms <ms>]\n"
        "                [--checkpoint-interval <n>] [--pool <id,id,...>]\n"
        "                [--metrics-port <p>]   # Prometheus at /metrics,\n"
        "                                       # JSON at /metrics.json\n");
    return 2;
  }

  std::map<ReplicaId, std::uint16_t> ports;
  std::vector<ReplicaId> committee;
  std::uint16_t my_port = 0;
  if (!load_peers(opts.peers_path, opts.id, ports, committee, my_port)) {
    std::fprintf(stderr, "bad peers file (need >= 4 '<id> <port>' lines "
                         "including our id)\n");
    return 2;
  }

  // The peers file lists the whole universe; the pool flag carves the
  // standbys out of it — the remainder is the epoch-0 committee.
  std::vector<ReplicaId> pool_members;
  if (!opts.pool.empty()) {
    std::vector<ReplicaId> active;
    for (ReplicaId id : committee) {
      if (std::find(opts.pool.begin(), opts.pool.end(), id) ==
          opts.pool.end()) {
        active.push_back(id);
      } else {
        pool_members.push_back(id);
      }
    }
    committee = std::move(active);
  }

  net::LiveNodeConfig cfg;
  cfg.me = opts.id;
  cfg.committee = committee;
  cfg.pool = pool_members;
  cfg.standby = std::find(pool_members.begin(), pool_members.end(),
                          opts.id) != pool_members.end();
  cfg.instances = opts.instances;
  cfg.use_ecdsa = true;
  cfg.listen_port = my_port;
  cfg.real_blocks = true;
  cfg.client_port = opts.client_port;
  cfg.block_interval = std::chrono::milliseconds(opts.block_interval_ms);
  cfg.journal_path = opts.journal_path;
  cfg.checkpoint.interval = opts.checkpoint_interval;
  if (opts.metrics_port >= 0) {
    cfg.metrics_port = static_cast<std::uint16_t>(opts.metrics_port);
  }
  // Serve anti-entropy resync to stragglers after finishing the
  // budget; the node exits once every peer reported it is done too
  // (and stays up serving if a peer never does — it is a daemon).
  cfg.linger_after_decided = true;

  net::LiveNode node(cfg);
  if (!node.listening()) {
    std::fprintf(stderr, "cannot bind replica port %u\n", my_port);
    return 1;
  }
  for (const auto& [address, amount] : opts.genesis) {
    node.block_manager().utxos().mint(address, amount);
  }
  node.set_peer_ports(ports);

  std::printf("zlb_node id=%u replica-port=%u client-port=%u "
              "metrics-port=%u committee=%zu pool=%zu%s journal=%s\n",
              opts.id, node.port(), node.client_port(), node.metrics_port(),
              committee.size(), pool_members.size(),
              cfg.standby ? " (standby)" : "",
              opts.journal_path.empty() ? "(none)"
                                        : opts.journal_path.c_str());
  std::fflush(stdout);

  node.run(std::chrono::hours(24 * 365));
  std::printf("zlb_node id=%u: decided %llu instances, chain height %zu\n",
              opts.id,
              static_cast<unsigned long long>(node.decided_count()),
              node.block_manager().store().size());
  return 0;
}
