// Membership change under a colluding majority, narrated: a coalition
// of d = ⌈5n/9⌉−1 deceitful replicas runs the binary-consensus attack,
// honest replicas fork, detect, exclude the coalition through the
// runtime-shrinking exclusion consensus and include fresh pool
// replicas, after which consensus proceeds in the new epoch.
//
//   ./membership_churn [n] [delay_ms]
#include <cstdio>
#include <cstdlib>

#include "zlb/cluster.hpp"

using namespace zlb;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 19;
  const long delay_ms = argc > 2 ? std::atol(argv[2]) : 500;

  ClusterConfig cfg;
  cfg.n = n;
  cfg.deceitful = (5 * n + 8) / 9 - 1;
  cfg.attack = AttackKind::kBinaryConsensus;
  cfg.base_delay = DelayModel::kLan;
  cfg.attack_delay = DelayModel::kUniform;
  cfg.attack_uniform_mean = ms(delay_ms);
  cfg.replica.batch_tx_count = 100;
  cfg.replica.max_instances = 100;
  cfg.replica.log_slot_cap = 64;
  cfg.seed = 9;
  Cluster cluster(cfg);

  std::printf("committee: n=%zu, deceitful coalition d=%zu (> n/3 = %zu!), "
              "honest=%zu in %d partitions, injected cross-partition delay "
              "~%ld ms\n\n",
              n, cfg.deceitful, n / 3, cluster.honest_ids().size(),
              cluster.num_partitions(), delay_ms);

  cluster.run_while([&] { return cluster.all_recovered(); }, seconds(900));
  const auto rep = cluster.report();

  std::printf("timeline (sim time):\n");
  std::printf("  t=0        attack starts: coalition equivocates AUX votes "
              "per partition\n");
  std::printf("  +%.2fs     fork(s): %zu conflicting proposals over %zu "
              "instances\n",
              0.0, rep.disagreements, rep.forked_instances);
  std::printf("  +%.2fs     detection: every honest replica holds >= "
              "fd = %zu proofs of fraud\n",
              to_seconds(rep.detect_time), (n + 2) / 3);
  std::printf("  +%.2fs     exclusion consensus decides: %zu replicas "
              "excluded (committee shrank at runtime)\n",
              to_seconds(rep.exclude_time), rep.excluded);
  std::printf("  +%.2fs     inclusion consensus decides: %zu pool replicas "
              "chosen evenly across proposals\n",
              to_seconds(rep.include_time), rep.included);
  if (rep.catchup_time >= 0) {
    std::printf("  +%.2fs     new replicas caught up and activated\n",
                to_seconds(rep.catchup_time));
  }

  const auto& veteran = cluster.replica(cluster.honest_ids().front());
  std::printf("\nnew committee (epoch %u, %zu members): excluded",
              veteran.epoch(), veteran.committee().size());
  for (ReplicaId id : veteran.excluded()) std::printf(" %u", id);
  std::printf("\n");

  // Show convergence: run one more instance in the new epoch.
  cluster.run(cluster.sim().now() + seconds(60));
  std::size_t epoch1_decided = 0;
  for (ReplicaId id : cluster.honest_ids()) {
    for (std::uint64_t k = 0; k < cfg.replica.max_instances; ++k) {
      const auto* rec = cluster.replica(id).decision(1, k);
      if (rec != nullptr && rec->decided) {
        ++epoch1_decided;
        break;
      }
    }
  }
  std::printf("epoch-1 consensus: %zu/%zu veteran honest replicas decided "
              "another instance — agreement restored (Def. 3 convergence)\n",
              epoch1_decided, cluster.honest_ids().size());
  return rep.recovered ? 0 : 1;
}
