// State-sync catch-up: a 4-node live TCP cluster decides a hundred
// instances with periodic checkpoints, then a fifth node joins from
// nothing and catches up through a verified chunked snapshot transfer
// instead of replaying the chain from genesis. Prints the transfer as
// it is observed: checkpoint watermark, chunks, installed state,
// restart replay cost.
//
//   ./example_state_sync_catchup
#include <cstdio>
#include <filesystem>
#include <thread>

#include "chain/wallet.hpp"
#include "net/client_gateway.hpp"
#include "net/live_node.hpp"

using namespace zlb;
using namespace std::chrono_literals;

int main() {
  constexpr InstanceId kInstances = 120;
  constexpr std::uint64_t kCheckpointEvery = 25;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("zlb-statesync-example-" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);

  chain::Wallet alice(to_bytes("alice"));
  chain::Wallet bob(to_bytes("bob"));

  net::LiveNodeConfig base;
  base.instances = kInstances;
  base.use_ecdsa = false;  // fast protocol sigs; tx sigs stay ECDSA
  base.real_blocks = true;
  base.block_interval = 5ms;
  base.resync_interval = 50ms;
  base.linger_after_decided = true;
  base.committee = {0, 1, 2, 3, 4};
  base.checkpoint.interval = kCheckpointEvery;
  base.checkpoint.chunk_size = 1024;
  base.down_link_buffer_bytes = 16 * 1024;

  std::printf("== 4 veterans run %llu instances (checkpoint every %llu)\n",
              static_cast<unsigned long long>(kInstances),
              static_cast<unsigned long long>(kCheckpointEvery));
  std::map<ReplicaId, std::uint16_t> ports;
  std::vector<std::unique_ptr<net::LiveNode>> nodes;
  for (ReplicaId i = 0; i < 5; ++i) {
    net::LiveNodeConfig cfg = base;
    cfg.me = i;
    if (i == 0) cfg.journal_path = dir + "/node0.wal";  // node 0 durable
    nodes.push_back(std::make_unique<net::LiveNode>(cfg));
    ports[i] = nodes.back()->port();
  }
  for (auto& node : nodes) {
    node->set_peer_ports(ports);
    node->block_manager().utxos().mint(alice.address(), 10'000);
  }

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back([node = nodes[i].get()] { node->run(60s); });
  }

  // A few client payments so the snapshot carries real state.
  if (auto client = net::GatewayClient::connect(nodes[0]->client_port())) {
    chain::UtxoSet view;
    view.mint(alice.address(), 10'000);
    for (int i = 0; i < 3; ++i) {
      const auto tx = alice.pay(view, bob.address(), 250);
      if (!tx) break;
      for (const auto& in : tx->inputs) view.consume(in.prev);
      view.insert_outputs(*tx);
      (void)client->submit(*tx);
    }
  }

  while (!nodes[0]->all_decided() || !nodes[1]->all_decided() ||
         !nodes[2]->all_decided() || !nodes[3]->all_decided()) {
    std::this_thread::sleep_for(20ms);
  }
  std::printf("   veterans decided %llu instances; node0 checkpoint wm=%llu\n",
              static_cast<unsigned long long>(nodes[0]->decided_count()),
              static_cast<unsigned long long>(
                  nodes[0]->checkpoints()->watermark()));

  std::printf("== node 4 joins from scratch\n");
  threads.emplace_back([node = nodes[4].get()] { node->run(60s); });
  while (!nodes[4]->all_decided()) std::this_thread::sleep_for(20ms);
  for (auto& node : nodes) node->stop();
  for (auto& t : threads) t.join();

  const auto stats = nodes[4]->sync_stats();
  std::printf("   snapshot installed: %llu (watermark %llu)\n",
              static_cast<unsigned long long>(stats.snapshots_installed),
              static_cast<unsigned long long>(stats.installed_upto));
  std::printf("   chunks pulled: %llu, manifests adopted: %llu\n",
              static_cast<unsigned long long>(stats.fetch.chunks_received),
              static_cast<unsigned long long>(stats.fetch.manifests_adopted));
  std::printf("   joiner bob balance: %lld (veteran: %lld)\n",
              static_cast<long long>(nodes[4]->balance(bob.address())),
              static_cast<long long>(nodes[0]->balance(bob.address())));
  const bool identical =
      nodes[4]->state_digest() == nodes[0]->state_digest();
  std::printf("   ledgers hash-identical: %s\n", identical ? "yes" : "NO");

  // Restart economics for the durable node: only the post-checkpoint
  // journal tail replays.
  bm::BlockManager reborn;
  sync::CheckpointManager ckpt(
      sync::CheckpointConfig{dir + "/node0.wal.ckpt", kCheckpointEvery, 1024});
  if (const auto snap = ckpt.load_disk()) {
    reborn.restore(*snap);
    const auto replay = reborn.open_journal(dir + "/node0.wal");
    std::printf("== node0 restart: checkpoint wm=%llu + %zu journal blocks "
                "(chain has %llu instances)\n",
                static_cast<unsigned long long>(snap->upto),
                replay ? replay->blocks : 0,
                static_cast<unsigned long long>(kInstances));
  }
  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
