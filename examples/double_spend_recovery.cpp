// The paper's Figure 1 scenario, end to end: Alice holds $1M and tries
// to double spend it on Bob and Carol by corrupting a coalition of
// deceitful replicas that equivocate during the reliable broadcast.
// The two partitions of honest replicas transiently decide conflicting
// blocks (a fork), the accountable SMR cross-checks the decisions,
// builds proofs of fraud, excludes the coalition, includes fresh
// replicas from the pool — and the Blockchain Manager merges the
// branches, funding the conflicting payment from the coalition's
// deposit so that neither Bob nor Carol loses a coin.
//
//   ./double_spend_recovery
#include <cstdio>

#include "asmr/payload.hpp"
#include "chain/wallet.hpp"
#include "zlb/cluster.hpp"

using namespace zlb;

int main() {
  constexpr chain::Amount kMillion = 1'000'000;

  ClusterConfig cfg;
  cfg.n = 10;
  cfg.deceitful = 5;  // d = ⌈5n/9⌉ − 1 > n/3: beyond every classic BFT bound
  cfg.attack = AttackKind::kReliableBroadcast;
  cfg.base_delay = DelayModel::kLan;
  cfg.attack_delay = DelayModel::kUniform;
  cfg.attack_uniform_mean = ms(400);
  cfg.replica.synthetic = false;
  cfg.replica.batch_tx_count = 8;
  cfg.replica.max_instances = 40;
  cfg.replica.log_slot_cap = 32;
  cfg.seed = 1;
  Cluster cluster(cfg);

  chain::Wallet alice(to_bytes("alice"));
  chain::Wallet bob(to_bytes("bob"));
  chain::Wallet carol(to_bytes("carol"));

  // Genesis + the coalition's slashing deposit at every replica.
  for (ReplicaId id : cluster.honest_ids()) {
    auto& bm = cluster.replica(id).block_manager();
    bm.utxos().mint(alice.address(), kMillion);
    bm.fund_deposit(kMillion + kMillion / 5);
  }
  for (ReplicaId id : cluster.pool_ids()) {
    auto& bm = cluster.replica(id).block_manager();
    bm.utxos().mint(alice.address(), kMillion);
    bm.fund_deposit(kMillion + kMillion / 5);
  }

  // Alice signs both conflicting transactions (different devices, same
  // coin) and hands them to the coalition, which equivocates: block A
  // (tx: alice -> bob) to one partition, block B (tx: alice -> carol)
  // to the other.
  chain::UtxoSet genesis_view;
  genesis_view.mint(alice.address(), kMillion);
  const auto coins = genesis_view.owned_by(alice.address());
  const chain::Transaction tx_bob =
      alice.pay_from(coins, bob.address(), kMillion);
  const chain::Transaction tx_carol =
      alice.pay_from(coins, carol.address(), kMillion);
  std::printf("conflicting txs signed: alice->bob %s..., alice->carol %s...\n",
              crypto::hash_hex(tx_bob.id()).substr(0, 12).c_str(),
              crypto::hash_hex(tx_carol.id()).substr(0, 12).c_str());

  AdversaryShared* shared = cluster.adversary_shared();
  shared->payload_factory = [&](int persona, InstanceId index) {
    asmr::BatchPayload p;
    p.synthetic = false;
    p.proposer = 0;
    p.index = index;
    chain::Block block;
    block.index = index;
    if (index == 0) {
      block.txs.push_back(persona == 0 ? tx_bob : tx_carol);
      p.tag = static_cast<std::uint64_t>(persona);
    }
    p.tx_count = static_cast<std::uint32_t>(block.txs.size());
    p.block_bytes = block.serialize();
    return p.encode();
  };

  cluster.run_while([&] { return cluster.all_recovered(); }, seconds(600));
  const auto rep = cluster.report();

  std::printf("\n-- what happened --\n");
  std::printf("fork: %zu conflicting proposals across %zu instance(s)\n",
              rep.disagreements, rep.forked_instances);
  std::printf("detection: %.2f s after the first equivocation "
              "(>= %zu proofs of fraud)\n",
              to_seconds(rep.detect_time), (cfg.n + 2) / 3);
  std::printf("exclusion consensus: +%.2f s, excluded %zu deceitful "
              "replicas\n",
              to_seconds(rep.exclude_time), rep.excluded);
  std::printf("inclusion consensus: +%.2f s, included %zu pool replicas\n",
              to_seconds(rep.include_time), rep.included);

  std::printf("\n-- final balances (every honest replica) --\n");
  std::printf("  %-8s %-10s %-10s %-10s %-12s\n", "replica", "alice", "bob",
              "carol", "deposit");
  bool zero_loss = true;
  for (ReplicaId id : cluster.honest_ids()) {
    auto& bm = cluster.replica(id).block_manager();
    const auto ba = bm.utxos().balance(alice.address());
    const auto bb = bm.utxos().balance(bob.address());
    const auto bc = bm.utxos().balance(carol.address());
    std::printf("  %-8u %-10lld %-10lld %-10lld %-12lld\n", id,
                static_cast<long long>(ba), static_cast<long long>(bb),
                static_cast<long long>(bc),
                static_cast<long long>(bm.deposit()));
    zero_loss &= bb == kMillion && bc == kMillion;
  }
  std::printf("\nzero loss: %s — both Bob and Carol were paid; the "
              "conflicting branch was funded from the coalition's deposit\n",
              zero_loss ? "YES" : "NO");
  return zero_loss && rep.recovered ? 0 : 1;
}
