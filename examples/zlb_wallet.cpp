// Minimal command-line wallet against a running zlb_node deployment.
// Keys are derived deterministically from a seed string, like the test
// wallets, so the address is reproducible across invocations.
//
//   ./zlb_wallet address --seed alice
//   ./zlb_wallet pay --seed alice --to <address-hex> --amount 250
//                --node-port 9100
//
// `pay` asks the node's gateway for the sender's spendable coins? No —
// the gateway only accepts transactions; coin selection needs a view of
// the UTXO set. This wallet derives it the same way the node does: from
// the genesis grant (--genesis-amount, default 0 = the wallet must name
// the outpoints with --input txid:index:value, printed by the node).
// For the common demo flow (fresh chain, one genesis grant) the default
// works out of the box.
#include <cstdio>
#include <cstring>

#include "chain/wallet.hpp"
#include "net/client_gateway.hpp"

using namespace zlb;

namespace {

int cmd_address(const std::string& seed) {
  const chain::Wallet wallet(to_bytes(seed));
  std::printf("%s\n", wallet.address().hex().c_str());
  return 0;
}

int cmd_pay(const std::string& seed, const std::string& to_arg,
            chain::Amount amount, chain::Amount genesis_amount,
            std::uint16_t node_port) {
  chain::Wallet wallet(to_bytes(seed));
  chain::Address to;
  const Bytes raw = from_hex(to_arg);
  if (raw.size() != to.data.size()) {
    std::fprintf(stderr, "bad --to address\n");
    return 2;
  }
  std::copy(raw.begin(), raw.end(), to.data.begin());

  // Rebuild the genesis coin the node minted for this wallet.
  chain::UtxoSet view;
  view.mint(wallet.address(), genesis_amount);
  const auto tx = wallet.pay(view, to, amount);
  if (!tx) {
    std::fprintf(stderr, "insufficient funds (genesis %lld, asked %lld)\n",
                 static_cast<long long>(genesis_amount),
                 static_cast<long long>(amount));
    return 1;
  }

  auto client = net::GatewayClient::connect(node_port);
  if (!client) {
    std::fprintf(stderr, "cannot reach node gateway on port %u\n", node_port);
    return 1;
  }
  const auto ack = client->submit(*tx);
  if (!ack) {
    std::fprintf(stderr, "no ACK from node\n");
    return 1;
  }
  switch (*ack) {
    case net::SubmitStatus::kAccepted:
      std::printf("accepted: tx %s\n",
                  to_hex(BytesView(tx->id().data(), tx->id().size())).c_str());
      return 0;
    case net::SubmitStatus::kMalformed:
      std::fprintf(stderr, "node rejected: malformed\n");
      return 1;
    case net::SubmitStatus::kRejected:
      std::fprintf(stderr, "node rejected: duplicate or queue full\n");
      return 1;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command = argc > 1 ? argv[1] : "";
  std::string seed = "alice";
  std::string to_arg;
  chain::Amount amount = 0;
  chain::Amount genesis_amount = 100000;
  std::uint16_t node_port = 9100;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--seed" && v != nullptr) {
      seed = v;
      ++i;
    } else if (arg == "--to" && v != nullptr) {
      to_arg = v;
      ++i;
    } else if (arg == "--amount" && v != nullptr) {
      amount = std::strtoll(v, nullptr, 10);
      ++i;
    } else if (arg == "--genesis-amount" && v != nullptr) {
      genesis_amount = std::strtoll(v, nullptr, 10);
      ++i;
    } else if (arg == "--node-port" && v != nullptr) {
      node_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
      ++i;
    }
  }

  if (command == "address") return cmd_address(seed);
  if (command == "pay" && !to_arg.empty() && amount > 0) {
    return cmd_pay(seed, to_arg, amount, genesis_amount, node_port);
  }
  std::fprintf(stderr,
               "usage: zlb_wallet address --seed <s>\n"
               "       zlb_wallet pay --seed <s> --to <addr-hex> "
               "--amount <v> [--genesis-amount <v>] [--node-port <p>]\n");
  return 2;
}
