// Quickstart: a 4-replica ZLB deployment processing real signed UTXO
// payments end to end — clients submit transactions, replicas batch
// them, the accountable SBC decides, the Blockchain Manager commits,
// and every replica converges to the same balances.
//
//   ./quickstart
#include <cstdio>

#include "chain/wallet.hpp"
#include "zlb/cluster.hpp"

using namespace zlb;

namespace {

void print_balances(Cluster& cluster, const chain::Wallet& alice,
                    const chain::Wallet& bob, const chain::Wallet& carol) {
  std::printf("  %-8s %-10s %-10s %-10s\n", "replica", "alice", "bob",
              "carol");
  for (ReplicaId id : cluster.honest_ids()) {
    const auto& utxos = cluster.replica(id).block_manager().utxos();
    std::printf("  %-8u %-10lld %-10lld %-10lld\n", id,
                static_cast<long long>(utxos.balance(alice.address())),
                static_cast<long long>(utxos.balance(bob.address())),
                static_cast<long long>(utxos.balance(carol.address())));
  }
}

}  // namespace

int main() {
  // 1. A small ZLB cluster: 4 replicas, no faults, LAN latencies, real
  //    (non-synthetic) blocks.
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.base_delay = DelayModel::kLan;
  cfg.replica.synthetic = false;
  cfg.replica.batch_tx_count = 16;
  cfg.replica.max_instances = 5;
  cfg.seed = 2024;
  Cluster cluster(cfg);

  // 2. Shared genesis: every replica credits Alice with 10,000 coins
  //    (the same deterministic outpoint everywhere).
  chain::Wallet alice(to_bytes("alice"));
  chain::Wallet bob(to_bytes("bob"));
  chain::Wallet carol(to_bytes("carol"));
  for (ReplicaId id : cluster.honest_ids()) {
    cluster.replica(id).block_manager().utxos().mint(alice.address(), 10000);
  }
  std::printf("== genesis ==\n");
  print_balances(cluster, alice, bob, carol);

  // 3. Alice signs a payment of 2,500 to Bob and submits it to one
  //    replica; ZLB batches, agrees and commits it.
  asmr::Replica& entry = cluster.replica(cluster.honest_ids().front());
  const auto pay_bob =
      alice.pay(entry.block_manager().utxos(), bob.address(), 2500);
  entry.submit(*pay_bob);
  cluster.run_while(
      [&] {
        return entry.block_manager().utxos().balance(bob.address()) == 2500;
      },
      seconds(60));
  std::printf("\n== after alice -> bob 2500 (t = %.3f s) ==\n",
              to_seconds(cluster.sim().now()));
  print_balances(cluster, alice, bob, carol);

  // 4. Bob's freshly minted coin immediately works as an input: he pays
  //    Carol 1,000 from it.
  const auto pay_carol =
      bob.pay(entry.block_manager().utxos(), carol.address(), 1000);
  entry.submit(*pay_carol);
  cluster.run_while(
      [&] {
        return entry.block_manager().utxos().balance(carol.address()) ==
               1000;
      },
      seconds(60));
  cluster.run(cluster.sim().now() + seconds(1));  // drain in-flight traffic
  std::printf("\n== after bob -> carol 1000 (t = %.3f s) ==\n",
              to_seconds(cluster.sim().now()));
  print_balances(cluster, alice, bob, carol);

  // 5. Every replica holds the same chain.
  bool agree = true;
  const auto& ref = entry.block_manager();
  for (ReplicaId id : cluster.honest_ids()) {
    const auto& bm = cluster.replica(id).block_manager();
    agree &= bm.utxos().balance(carol.address()) ==
             ref.utxos().balance(carol.address());
  }
  std::printf("\nchain height: %llu blocks, replicas agree: %s\n",
              static_cast<unsigned long long>(ref.store().size()),
              agree ? "yes" : "NO");
  return agree ? 0 : 1;
}
