// Known-bad fixture: observability code reading wall time through a
// C-level API instead of the injected common::Clock. A span stamped
// this way would differ across sim schedules and break the
// bit-determinism contract the obs layer promises zlb_mc.
#include <ctime>

namespace zlb::obs {

long sample_now_seconds() {
  return static_cast<long>(time(nullptr));
}

}  // namespace zlb::obs
