// Known-bad fixture for the `epoch-signing` rule: a signed wire payload
// whose signing bytes cover sender and index but never the membership
// epoch — the signature verifies unchanged after a reconfiguration, so
// an excluded replica could replay it into the next epoch. The helpers
// keep the call graph non-trivial (the rule searches transitively).
#include <cstdint>
#include <vector>

namespace fixture {

using Bytes = std::vector<std::uint8_t>;

struct Writer {
  Bytes out;
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
};

struct BadVote {
  std::uint32_t sender = 0;
  std::uint64_t index = 0;

  void write_header(Writer& w) const {
    w.u32(sender);
    w.u64(index);
  }

  Bytes signing_bytes() const {
    Writer w;
    write_header(w);
    return w.out;
  }
};

}  // namespace fixture
