// Known-bad fixture pinning the COMMIT PATH shape of the io-under-lock
// rule: the pre-pipeline decide→commit→apply path ran signature
// verification, UTXO apply and the journal fsync while holding the
// node-wide decisions lock — every client admission and metrics read
// stalled on disk latency once per decided instance. The commit
// pipeline moved those stages onto dedicated threads outside the lock;
// this fixture keeps the rule honest so the pattern cannot creep back.
#include <cstdio>

namespace fixture {

class Mutex {
 public:
  void lock() {}
  void unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

struct Block {
  const char* bytes = "";
};

class Node {
 public:
  // The anti-pattern: decide handler applies + journals inline under
  // the decisions lock instead of handing off to the commit pipeline.
  void on_decided(const Block& block) {
    const MutexLock lock(decisions_mu_);
    apply(block);
    std::FILE* f = fopen("journal.wal", "a");
    if (f != nullptr) {
      fwrite(block.bytes, 1, 1, f);
      fflush(f);
      fclose(f);
    }
  }

 private:
  void apply(const Block&) {}

  Mutex decisions_mu_;
};

}  // namespace fixture
