// Known-bad fixture for the `io-under-lock` rule: blocking file I/O
// performed while a lock is held — every thread contending on that
// lock now waits on disk latency.
#include <cstdio>

namespace fixture {

class Mutex {
 public:
  void lock() {}
  void unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

class Journal {
 public:
  void append(const char* line) {
    const MutexLock lock(mu_);
    std::FILE* f = fopen("journal.log", "a");
    if (f != nullptr) {
      fwrite(line, 1, 4, f);
      fclose(f);
    }
  }

 private:
  Mutex mu_;
};

}  // namespace fixture
