// Known-bad fixture for the `raw-mutex` rule: std synchronization
// primitives used directly instead of the annotated zlb::Mutex /
// MutexLock wrappers, making the code invisible to -Wthread-safety.
#include <mutex>

namespace fixture {

class Counter {
 public:
  void bump() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++value_;
  }

 private:
  std::mutex mu_;
  long value_ = 0;
};

}  // namespace fixture
