// Known-bad fixture for the `wall-clock` rule: protocol code reading
// real time directly. Timestamps taken here differ across runs, so the
// protocol's behaviour is no longer a pure function of the delivered
// messages — the model checker cannot replay it.
#include <chrono>
#include <cstdint>

namespace fixture {

std::uint64_t stamp_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace fixture
