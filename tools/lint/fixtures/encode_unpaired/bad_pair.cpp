// Known-bad fixture for the `encode-pair` rule: a free encode_* with no
// matching decode_* — the decode side is presumably hand-rolled at some
// call site and will drift from this encoder.
#include <cstdint>
#include <vector>

namespace fixture {

using Bytes = std::vector<std::uint8_t>;

struct Widget {
  std::uint32_t id = 0;
  std::uint32_t size = 0;
};

Bytes encode_widget(const Widget& w) {
  Bytes out;
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(w.id >> (8 * i)));
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(w.size >> (8 * i)));
  return out;
}

}  // namespace fixture
