// Known-bad fixture for the `nondet-iter` rule: iterating an unordered
// container in a protocol-visible path (the fixture sits under a fake
// src/consensus/). The emitted order depends on the hash function and
// load factor, so two replicas building this "proposal" from equal sets
// can broadcast different byte strings — and a model-checker replay of
// the same action list diverges.
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace fixture {

std::vector<std::uint32_t> proposal_order(
    const std::unordered_set<std::uint32_t>& members) {
  std::vector<std::uint32_t> out;
  for (const auto id : members) out.push_back(id);
  return out;
}

std::vector<std::uint32_t> copy_order(
    const std::unordered_set<std::uint32_t>& members) {
  return {members.begin(), members.end()};
}

}  // namespace fixture
