#!/usr/bin/env python3
"""ZLB protocol-invariant linter — the purely LEXICAL rules.

Five regex rules over the C++ sources, each protecting an invariant
that is visible in the program text itself. Invariants that need real
dataflow — epoch-bound signing bytes, encode/decode wire symmetry,
interprocedural lock-order and blocking-under-lock — live in the
semantic analyzer, tools/analyze/zlb_analyze.py, which replaced this
linter's old `epoch-signing` and `encode-pair` rules.

  raw-mutex        Raw std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable outside the annotated
                   common/mutex.hpp wrappers escapes the clang
                   -Wthread-safety analysis (the wrappers carry the
                   capability attributes; the std types do not).
  io-under-lock    Blocking file/socket calls lexically inside a held
                   lock scope stall every thread contending on that
                   lock (and under decisions_mutex_ would stall the
                   consensus loop on disk latency).
  nondet-iter      Iterating a std::unordered_map/unordered_set in a
                   protocol-visible path (src/consensus, src/zlb,
                   src/bm, src/asmr) leaks hash-table order into
                   proposals/votes/snapshots and breaks the replay
                   determinism the model checker depends on.
  wall-clock       std::chrono::{system,steady,high_resolution}_clock
                   outside the src/net and src/common shims reads real
                   time from inside the protocol; route it through
                   common/clock.hpp so the scheduler owns time.
  obs-clock        Two prongs guarding the observability layer's
                   determinism contract. (a) src/obs/ may take time
                   only through the injected common::Clock — C-level
                   time APIs (time, gettimeofday, clock_gettime, ...)
                   there would make spans recorded under a sim or
                   ManualClock schedule nondeterministic. (b) No
                   fingerprint() body may touch observability state
                   (obs::, tracer_, metrics_): metrics must never feed
                   the model checker's visited-state keys.

Vetted exceptions live in an allowlist file (see --allow):

  raw-mutex:<path-suffix>     file allowed to use std primitives
  io-under-lock:<path-suffix>
  nondet-iter:<path-suffix>   iteration provably canonicalized (e.g.
                              sorted immediately after collection)
  wall-clock:<path-suffix>    additional sanctioned clock shim
  obs-clock:<path-suffix>     obs file allowed to read time directly

Exit status: 0 = clean, 1 = findings, 2 = usage error. Findings print
as `file:line: [rule] message` so editors and CI annotate them.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

RAW_MUTEX = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(_any)?)\b"
)
LOCK_DECL = re.compile(
    r"\b(?:common::)?(?:MutexLock|std::lock_guard|std::unique_lock|"
    r"std::scoped_lock)\b[^;{}]*\("
)
BLOCKING_CALL = re.compile(
    r"\b(fopen|fclose|fread|fwrite|fflush|fsync|fdatasync|"
    r"std::ofstream|std::ifstream|std::fstream|std::getline|"
    r"sleep_for|sleep_until|::poll|::connect|::accept|::recv|::send|"
    r"std::rename|std::remove)\b"
)
# `} name(...)` / `Type name(args) ... {` style definition headers. The
# last path component of a qualified name is the lookup key: the call
# graph below resolves bare calls by that component, which is
# deliberately merge-happy (any same-named definition satisfies the
# search) — the rule must never false-positive on real code.
FUNC_DEF = re.compile(
    r"([A-Za-z_][\w:]*)\s*\(([^;{}]*)\)\s*"
    r"((?:const|noexcept|override|final|mutable|->\s*[\w:<>&*, ]+)\s*)*\{"
)

UNORDERED_DECL = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
ITER_BEGIN = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?r?(?:begin|end)\s*\(")
# Range-for only: a classic `for (init; cond; step)` cannot match
# because neither capture may cross a `;`.
RANGE_FOR = re.compile(r"\bfor\s*\(([^;{}]*?):([^;{}]*?)\)")
# Paths where iteration order is protocol-visible (feeds proposals,
# votes, decided state, or ledger application).
PROTOCOL_DIRS = ("src/consensus/", "src/zlb/", "src/bm/", "src/asmr/")
WALL_CLOCK = re.compile(
    r"\b(?:std::chrono::)?(system_clock|steady_clock|high_resolution_clock)\b")
# The sanctioned homes for real time: the live transport's event loop
# and the common/clock.hpp injectable shim.
CLOCK_SHIM_DIRS = ("src/net/", "src/common/")
# The observability layer must stay deterministic under sim/ManualClock
# schedules: time enters only through the injected common::Clock.
OBS_CLOCK_DIRS = ("src/obs/",)
# C-level time sources the chrono-based wall-clock rule cannot see.
# Longest alternatives first so e.g. clock_gettime wins over clock.
OBS_TIME_API = re.compile(
    r"\b(?:std::|::)?(clock_gettime|timespec_get|gettimeofday|"
    r"localtime_r|localtime|gmtime_r|gmtime|mktime|ftime|clock|time)"
    r"\s*\(")
# Observability state that must never reach a fingerprint() body.
OBS_IN_FINGERPRINT = re.compile(r"\b(?:obs::\w+|tracer_|metrics_)\b")

COMMENT_BLOCK = re.compile(r"/\*.*?\*/", re.S)
COMMENT_LINE = re.compile(r"//[^\n]*")
STRING_LIT = re.compile(r'"(?:\\.|[^"\\])*"')
CHAR_LIT = re.compile(r"'(?:\\.|[^'\\])*'")


def strip_noise(text: str) -> str:
    """Blanks comments/strings, preserving newlines for line numbers."""

    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    for pat in (COMMENT_BLOCK, COMMENT_LINE, STRING_LIT, CHAR_LIT):
        text = pat.sub(blank, text)
    return text


def body_at(text: str, open_brace: int) -> str:
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace : i + 1]
    return text[open_brace:]


class Finding:
    def __init__(self, path: Path, line: int, rule: str, msg: str):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def load_allowlist(path: Path | None) -> dict[str, set[str]]:
    allow: dict[str, set[str]] = {}
    if path is None or not path.exists():
        return allow
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        rule, _, token = line.partition(":")
        allow.setdefault(rule.strip(), set()).add(token.strip())
    return allow


def allowed_file(allow: dict[str, set[str]], rule: str, path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for suffix in allow.get(rule, ()))


def rule_raw_mutex(files: dict[Path, str],
                   allow: dict[str, set[str]]) -> list[Finding]:
    findings = []
    for path, text in files.items():
        if allowed_file(allow, "raw-mutex", path):
            continue
        for m in RAW_MUTEX.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                path, line, "raw-mutex",
                f"std::{m.group(1)} bypasses the annotated zlb::Mutex/"
                "MutexLock wrappers (invisible to -Wthread-safety)"))
    return findings


def rule_io_under_lock(files: dict[Path, str],
                       allow: dict[str, set[str]]) -> list[Finding]:
    findings = []
    for path, text in files.items():
        if allowed_file(allow, "io-under-lock", path):
            continue
        lock_depths: list[int] = []  # brace depth at each held lock
        depth = 0
        for lineno, line in enumerate(text.splitlines(), start=1):
            if lock_depths and BLOCKING_CALL.search(line):
                call = BLOCKING_CALL.search(line).group(1)
                findings.append(Finding(
                    path, lineno, "io-under-lock",
                    f"blocking call {call} inside a held lock scope"))
            if LOCK_DECL.search(line):
                lock_depths.append(depth)
            for ch in line:
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    while lock_depths and depth <= lock_depths[-1]:
                        lock_depths.pop()
    return findings


def unordered_container_names(files: dict[Path, str]) -> set[str]:
    """Identifiers declared anywhere with an unordered container type.

    Deliberately merge-happy, like the call graph: a vector that merely
    shares a name with an unordered member elsewhere can false-positive,
    which is what the allowlist is for — a missed nondeterministic
    iteration is the expensive direction.
    """
    names: set[str] = set()
    for text in files.values():
        for m in UNORDERED_DECL.finditer(text):
            i = m.end() - 1  # at the '<'
            depth = 0
            while i < len(text):
                if text[i] == "<":
                    depth += 1
                elif text[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            dm = re.match(r"[&\s]*([A-Za-z_]\w*)", text[i + 1 : i + 160])
            if dm:
                names.add(dm.group(1))
    return names


def rule_nondet_iter(files: dict[Path, str],
                     allow: dict[str, set[str]]) -> list[Finding]:
    names = unordered_container_names(files)
    findings = []
    for path, text in files.items():
        posix = path.as_posix()
        if not any(d in posix for d in PROTOCOL_DIRS):
            continue
        if allowed_file(allow, "nondet-iter", path):
            continue
        for m in RANGE_FOR.finditer(text):
            idents = re.findall(r"[A-Za-z_]\w*", m.group(2))
            if idents and idents[-1] in names:
                line = text.count("\n", 0, m.start()) + 1
                findings.append(Finding(
                    path, line, "nondet-iter",
                    f"range-for over unordered container {idents[-1]}: "
                    "hash-table order leaks into protocol-visible state "
                    "and breaks replay determinism"))
        seen_lines: set[int] = set()
        for m in ITER_BEGIN.finditer(text):
            if m.group(1) in names:
                line = text.count("\n", 0, m.start()) + 1
                if line in seen_lines:
                    continue  # .begin() and .end() share a line
                seen_lines.add(line)
                findings.append(Finding(
                    path, line, "nondet-iter",
                    f"{m.group(1)}.begin()/end() iterates an unordered "
                    "container in a protocol-visible path; sort the "
                    "result or use an ordered container"))
    return findings


def rule_wall_clock(files: dict[Path, str],
                    allow: dict[str, set[str]]) -> list[Finding]:
    findings = []
    for path, text in files.items():
        posix = path.as_posix()
        if any(d in posix for d in CLOCK_SHIM_DIRS):
            continue
        if allowed_file(allow, "wall-clock", path):
            continue
        for m in WALL_CLOCK.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                path, line, "wall-clock",
                f"{m.group(1)} outside the src/net|src/common clock "
                "shims; route time through common/clock.hpp so the "
                "scheduler (and model checker) owns it"))
    return findings


def rule_obs_clock(files: dict[Path, str],
                   allow: dict[str, set[str]]) -> list[Finding]:
    findings = []
    for path, text in files.items():
        posix = path.as_posix()
        if (any(d in posix for d in OBS_CLOCK_DIRS)
                and not allowed_file(allow, "obs-clock", path)):
            for m in OBS_TIME_API.finditer(text):
                line = text.count("\n", 0, m.start()) + 1
                findings.append(Finding(
                    path, line, "obs-clock",
                    f"{m.group(1)}() reads time directly inside src/obs/; "
                    "metrics and spans must take time only through the "
                    "injected common/clock.hpp so traces stay "
                    "deterministic under sim schedules and zlb_mc"))
        # Prong (b), all paths: metric/tracer state inside fingerprint()
        # would leak schedule-dependent observability values into the
        # model checker's visited-state keys.
        for m in FUNC_DEF.finditer(text):
            if m.group(1).split("::")[-1] != "fingerprint":
                continue
            body = body_at(text, m.end() - 1)
            om = OBS_IN_FINGERPRINT.search(body)
            if om:
                line = text.count("\n", 0, m.end() - 1 + om.start()) + 1
                findings.append(Finding(
                    path, line, "obs-clock",
                    f"fingerprint() touches observability state "
                    f"({om.group(0)}): metrics must never feed the model "
                    "checker's visited-state keys"))
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", action="append", required=True,
                    help="directory tree to lint (repeatable)")
    ap.add_argument("--allow", type=Path, default=None,
                    help="allowlist file (rule:token lines)")
    ap.add_argument("--rule", action="append", default=None,
                    help="run only these rules (default: all)")
    args = ap.parse_args()

    files: dict[Path, str] = {}
    for root in args.root:
        root_path = Path(root)
        if not root_path.is_dir():
            print(f"zlb_lint: no such directory: {root}", file=sys.stderr)
            return 2
        for path in sorted(root_path.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                files[path] = strip_noise(path.read_text(errors="replace"))
    allow = load_allowlist(args.allow)

    rules = {
        "raw-mutex": lambda: rule_raw_mutex(files, allow),
        "io-under-lock": lambda: rule_io_under_lock(files, allow),
        "nondet-iter": lambda: rule_nondet_iter(files, allow),
        "wall-clock": lambda: rule_wall_clock(files, allow),
        "obs-clock": lambda: rule_obs_clock(files, allow),
    }
    selected = args.rule or list(rules)
    unknown = [r for r in selected if r not in rules]
    if unknown:
        print(f"zlb_lint: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for rule in selected:
        findings.extend(rules[rule]())
    for f in findings:
        print(f)
    if findings:
        print(f"zlb_lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
