#!/usr/bin/env python3
"""Self-test for zlb_lint.py.

Two halves, mirroring how a linter rots:
  1. Each known-bad fixture must FAIL with exactly its rule (a rule
     that stops firing is a silent hole in CI).
  2. The real src/ tree must PASS with the checked-in allowlist (a
     rule that starts false-positives would get the linter deleted).

Runs standalone (`python3 tools/lint/test_zlb_lint.py`) and under
ctest; prints one ok/FAIL line per case and exits non-zero on any
failure.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]
LINT = HERE / "zlb_lint.py"
ALLOW = HERE / "zlb_lint_allow.txt"

FIXTURES = {
    "raw_mutex": "raw-mutex",
    "io_under_lock": "io-under-lock",
    "nondet_iter": "nondet-iter",
    "wall_clock": "wall-clock",
    "obs_clock": "obs-clock",
}


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


def main() -> int:
    failures = 0

    for fixture, rule in sorted(FIXTURES.items()):
        root = HERE / "fixtures" / fixture
        proc = run_lint("--root", str(root))
        tagged = f"[{rule}]" in proc.stdout
        if proc.returncode == 1 and tagged:
            print(f"ok   fixture {fixture}: fails with [{rule}]")
        else:
            failures += 1
            print(f"FAIL fixture {fixture}: expected exit 1 with "
                  f"[{rule}], got exit {proc.returncode}\n"
                  f"{proc.stdout}{proc.stderr}")

        # The fixture must fail for its own reason only — a second
        # rule tripping on fixture code means that rule is too eager.
        other = [r for r in FIXTURES.values()
                 if r != rule and f"[{r}]" in proc.stdout]
        if other:
            failures += 1
            print(f"FAIL fixture {fixture}: unrelated rule(s) fired: "
                  f"{', '.join(other)}")

    proc = run_lint("--root", str(REPO / "src"), "--allow", str(ALLOW))
    if proc.returncode == 0:
        print("ok   src/ clean with allowlist")
    else:
        failures += 1
        print(f"FAIL src/ not clean (exit {proc.returncode}):\n"
              f"{proc.stdout}{proc.stderr}")

    # The allowlist must be load-bearing: without it the raw-mutex
    # exception for common/mutex.hpp has to fire.
    proc = run_lint("--root", str(REPO / "src"), "--rule", "raw-mutex")
    if proc.returncode == 1 and "[raw-mutex]" in proc.stdout:
        print("ok   allowlist is load-bearing for raw-mutex")
    else:
        failures += 1
        print("FAIL expected raw-mutex findings without the allowlist, "
              f"got exit {proc.returncode}")

    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
