// zlb_mc — explicit-state model checker for the ZLB protocol stack.
//
// Drives the REAL asmr::Replica / SbcEngine / BlockManager objects
// through every (bounded) message schedule of a small-scope
// configuration, checking agreement, epoch-boundary safety,
// no-double-spend and (on fair schedules) eventual decision after
// every action. See src/mc/ and the README "Model checking" section.
//
// Modes:
//   explore (default)  bounded exhaustive BFS/DFS with POR + dedup
//   fair               seeded random full schedules to quiescence
//   replay             re-execute a counterexample trace file
//
// Exit codes: 0 clean, 1 violation found, 2 usage/config error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "mc/explorer.hpp"
#include "mc/mc.hpp"

namespace {

using namespace zlb;
using namespace zlb::mc;

int usage() {
  std::cerr <<
      "usage: zlb_mc [mode] [options]\n"
      "modes:\n"
      "  explore            bounded exhaustive search (default)\n"
      "  fair               seeded random fair schedules to quiescence\n"
      "  replay --trace F   re-execute a recorded counterexample\n"
      "configuration:\n"
      "  --n N              committee size (default 4)\n"
      "  --equivocators E   scripted adversaries, ids 0..E-1 (default 1)\n"
      "  --pool P           standby pool size (default 0)\n"
      "  --instances K      regular instances (default 1)\n"
      "  --functional       real blocks + conflicting spends\n"
      "  --confirmation     confirmation phase on\n"
      "  --no-eq-proposals  adversary proposes one payload only\n"
      "  --no-eq-rbc        no conflicting echo/ready\n"
      "  --eq-aux           conflicting AUX votes too\n"
      "  --drops N --dups N --crashes N   fault budgets (default 0)\n"
      "  --inject-bug quorum|epoch        deliberate safety bug\n"
      "  --expect-epoch E   epoch every honest replica must reach\n"
      "explore options:\n"
      "  --depth D          action-depth bound (default 14)\n"
      "  --max-states N     state budget (default 100000)\n"
      "  --no-por           disable partial-order reduction\n"
      "  --dfs              depth-first instead of breadth-first\n"
      "fair options:\n"
      "  --schedules N      schedules to run (default 64)\n"
      "  --seed S           base seed (default 1)\n"
      "  --max-actions N    per-schedule action cap (default 50000)\n"
      "  --no-minimize      keep the raw counterexample\n"
      "output:\n"
      "  --json FILE        write the coverage/stats artifact\n"
      "  --trace-out FILE   write the counterexample trace\n"
      "  --quiet            suppress progress lines\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

void print_violation(const Violation& v) {
  std::cout << "VIOLATION [" << v.invariant << "] " << v.detail << "\n";
}

void print_trace(const Trace& t) {
  std::cout << "counterexample (" << t.actions.size() << " actions, seed "
            << t.seed << "):\n";
  for (const Action& a : t.actions) std::cout << "  " << to_string(a) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "explore";
  McConfig config;
  ExploreOptions eopt;
  FairOptions fopt;
  std::string json_path;
  std::string trace_out;
  std::string trace_in;
  bool quiet = false;

  int i = 1;
  if (i < argc && argv[i][0] != '-') mode = argv[i++];
  const auto next_u64 = [&](std::uint64_t& out) {
    if (i + 1 >= argc) return false;
    try {
      out = std::stoull(argv[++i]);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t v = 0;
    if (arg == "--n" && next_u64(v)) {
      config.n = static_cast<std::uint32_t>(v);
    } else if (arg == "--equivocators" && next_u64(v)) {
      config.equivocators = static_cast<std::uint32_t>(v);
    } else if (arg == "--pool" && next_u64(v)) {
      config.pool = static_cast<std::uint32_t>(v);
    } else if (arg == "--instances" && next_u64(v)) {
      config.instances = v;
    } else if (arg == "--functional") {
      config.functional = true;
    } else if (arg == "--confirmation") {
      config.confirmation = true;
    } else if (arg == "--no-eq-proposals") {
      config.equivocate_proposals = false;
    } else if (arg == "--no-eq-rbc") {
      config.equivocate_rbc = false;
    } else if (arg == "--eq-aux") {
      config.equivocate_aux = true;
    } else if (arg == "--drops" && next_u64(v)) {
      config.drop_budget = static_cast<std::uint32_t>(v);
    } else if (arg == "--dups" && next_u64(v)) {
      config.dup_budget = static_cast<std::uint32_t>(v);
    } else if (arg == "--crashes" && next_u64(v)) {
      config.crash_budget = static_cast<std::uint32_t>(v);
    } else if (arg == "--inject-bug" && i + 1 < argc) {
      const std::string bug = argv[++i];
      if (bug == "quorum") {
        config.bug = InjectedBug::kQuorum;
      } else if (bug == "epoch") {
        config.bug = InjectedBug::kEpoch;
      } else {
        return usage();
      }
    } else if (arg == "--expect-epoch" && next_u64(v)) {
      config.expect_epoch = static_cast<std::uint32_t>(v);
    } else if (arg == "--depth" && next_u64(v)) {
      eopt.max_depth = static_cast<std::uint32_t>(v);
    } else if (arg == "--max-states" && next_u64(v)) {
      eopt.max_states = v;
    } else if (arg == "--no-por") {
      eopt.por = false;
    } else if (arg == "--dfs") {
      eopt.dfs = true;
    } else if (arg == "--schedules" && next_u64(v)) {
      fopt.schedules = v;
    } else if (arg == "--seed" && next_u64(v)) {
      fopt.seed = v;
    } else if (arg == "--max-actions" && next_u64(v)) {
      fopt.max_actions = v;
    } else if (arg == "--no-minimize") {
      fopt.minimize = false;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_in = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "zlb_mc: bad argument: " << arg << "\n";
      return usage();
    }
  }
  if (config.equivocators >= config.n) {
    std::cerr << "zlb_mc: equivocators must be < n\n";
    return 2;
  }

  const auto emit_trace = [&](const Trace& t) {
    print_trace(t);
    if (!trace_out.empty() && !write_file(trace_out, t.encode())) {
      std::cerr << "zlb_mc: cannot write " << trace_out << "\n";
    }
  };

  if (mode == "explore") {
    if (!quiet) {
      eopt.progress_every = 10'000;
      eopt.progress = [](const ExploreStats& st) {
        std::cerr << "  ... " << st.states << " states, depth "
                  << st.max_depth_seen << ", " << st.dedup_hits
                  << " dedup hits\n";
      };
    }
    const ExploreResult r = explore(config, eopt);
    std::cout << "explored " << r.stats.states << " states, "
              << r.stats.transitions << " transitions, "
              << r.stats.dedup_hits << " dedup hits, max depth "
              << r.stats.max_depth_seen
              << (r.stats.complete ? " (complete)" : " (truncated)") << "\n";
    if (!json_path.empty()) {
      write_file(json_path,
                 stats_json(config, r.stats, r.violation.has_value()));
    }
    if (r.violation) {
      print_violation(*r.violation);
      if (r.trace) emit_trace(*r.trace);
      return 1;
    }
    std::cout << "no violation\n";
    return 0;
  }

  if (mode == "fair") {
    if (!quiet) {
      fopt.progress_every = 8;
      fopt.progress = [&](std::uint64_t done) {
        std::cerr << "  ... " << done << "/" << fopt.schedules
                  << " schedules clean\n";
      };
    }
    const FairResult r = run_fair(config, fopt);
    std::cout << "ran " << r.schedules_run << " fair schedule(s), "
              << r.actions_run << " actions\n";
    if (!json_path.empty()) {
      ExploreStats st;
      st.states = r.actions_run;  // actions ~ states along random walks
      st.transitions = r.actions_run;
      st.complete = false;
      write_file(json_path,
                 stats_json(config, st, r.violation.has_value()));
    }
    if (r.violation) {
      print_violation(*r.violation);
      if (r.trace) emit_trace(*r.trace);
      return 1;
    }
    std::cout << "no violation\n";
    return 0;
  }

  if (mode == "replay") {
    if (trace_in.empty()) return usage();
    std::ifstream in(trace_in);
    if (!in) {
      std::cerr << "zlb_mc: cannot read " << trace_in << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto trace = Trace::decode(buf.str());
    if (!trace) {
      std::cerr << "zlb_mc: malformed trace file\n";
      return 2;
    }
    const ReplayResult r = replay(*trace);
    std::cout << "replayed " << r.applied << " action(s), " << r.skipped
              << " inapplicable, " << (r.quiescent ? "quiescent" : "active")
              << "\n";
    if (r.violation) {
      print_violation(*r.violation);
      return 1;
    }
    std::cout << "no violation\n";
    return 0;
  }

  return usage();
}
