#!/usr/bin/env python3
"""Self-test for zlb_analyze.py.

Mirrors tools/lint/test_zlb_lint.py, covering how a semantic analyzer
rots:
  1. Each known-bad fixture must FAIL with exactly its checker — a
     checker that stops firing is a silent hole in CI.
  2. The real src/ tree must PASS with the checked-in allowlist and
     golden schema — a checker that starts false-positing would get
     the analyzer deleted.
  3. The wire schema must round-trip: extraction is deterministic,
     matches the committed golden, and a mutated golden is DETECTED
     (the drift diff is load-bearing, not decorative).
  4. The allowlist must be load-bearing (the vetted lock-blocking
     exception in LiveNode::run fires without it).

Runs standalone (`python3 tools/analyze/test_zlb_analyze.py`) and under
ctest; prints one ok/FAIL line per case and exits non-zero on any
failure.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]
ANALYZE = HERE / "zlb_analyze.py"
ALLOW = HERE / "zlb_analyze_allow.txt"
GOLDEN = HERE / "wire_schema.golden.json"

FIXTURES = {
    "lock_cycle": "lock-order",
    "epoch_unbound": "epoch-taint",
    "unchecked_decode": "bounded-decode",
    "schema_drift": "wire-schema",
    "blocking_lock": "lock-blocking",
}

ALL_CHECKERS = sorted(set(FIXTURES.values()))


def run_analyze(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(ANALYZE), *args],
        capture_output=True, text=True, check=False)


def main() -> int:
    failures = 0

    for fixture, checker in sorted(FIXTURES.items()):
        root = HERE / "fixtures" / fixture
        proc = run_analyze("--root", str(root), "--frontend", "python")
        tagged = f"[{checker}]" in proc.stdout
        if proc.returncode == 1 and tagged:
            print(f"ok   fixture {fixture}: fails with [{checker}]")
        else:
            failures += 1
            print(f"FAIL fixture {fixture}: expected exit 1 with "
                  f"[{checker}], got exit {proc.returncode}\n"
                  f"{proc.stdout}{proc.stderr}")

        # The fixture must fail for its own reason only — a second
        # checker tripping on fixture code means it is too eager.
        other = [c for c in ALL_CHECKERS
                 if c != checker and f"[{c}]" in proc.stdout]
        if other:
            failures += 1
            print(f"FAIL fixture {fixture}: unrelated checker(s) fired: "
                  f"{', '.join(other)}")

    # 2. src/ clean with allowlist + golden (exactly the CI invocation).
    proc = run_analyze("--root", str(REPO / "src"),
                       "--frontend", "python",
                       "--allow", str(ALLOW),
                       "--schema-golden", str(GOLDEN),
                       "--warn-unused-allow")
    if proc.returncode == 0:
        print("ok   src/ clean with allowlist + golden schema")
    else:
        failures += 1
        print(f"FAIL src/ not clean (exit {proc.returncode}):\n"
              f"{proc.stdout}{proc.stderr}")

    # 3a. Schema round-trip: regenerating into a temp file must
    # reproduce the committed golden byte-for-byte (deterministic
    # extraction; a mismatch means the golden is stale).
    with tempfile.TemporaryDirectory() as td:
        regen = Path(td) / "regen.json"
        proc = run_analyze("--root", str(REPO / "src"),
                           "--frontend", "python",
                           "--allow", str(ALLOW),
                           "--checker", "wire-schema",
                           "--schema-golden", str(regen),
                           "--write-golden")
        if proc.returncode == 0 and regen.exists() and \
                json.loads(regen.read_text()) == \
                json.loads(GOLDEN.read_text()):
            print("ok   schema round-trip: regeneration matches golden")
        else:
            failures += 1
            print("FAIL schema regeneration differs from committed "
                  f"golden (exit {proc.returncode}) — re-run with "
                  "--write-golden and review the wire change")

        # 3b. Drift detection: a golden with one mutated field width
        # must produce a wire-schema finding.
        mutated = json.loads(GOLDEN.read_text())
        key = sorted(mutated["records"])[0]
        slot = sorted(mutated["records"][key])[0]
        mutated["records"][key][slot] = \
            mutated["records"][key][slot] + ["u8"]
        bad = Path(td) / "mutated.json"
        bad.write_text(json.dumps(mutated))
        proc = run_analyze("--root", str(REPO / "src"),
                           "--frontend", "python",
                           "--allow", str(ALLOW),
                           "--checker", "wire-schema",
                           "--schema-golden", str(bad))
        if proc.returncode == 1 and "[wire-schema]" in proc.stdout:
            print("ok   golden drift is detected")
        else:
            failures += 1
            print(f"FAIL mutated golden not detected "
                  f"(exit {proc.returncode})\n{proc.stdout}")

    # 4. The allowlist must be load-bearing: without it the vetted
    # startup-recovery I/O under LiveNode's mutexes has to fire.
    proc = run_analyze("--root", str(REPO / "src"),
                       "--frontend", "python",
                       "--checker", "lock-blocking")
    if proc.returncode == 1 and "[lock-blocking]" in proc.stdout \
            and "LiveNode::run" in proc.stdout:
        print("ok   allowlist is load-bearing for lock-blocking")
    else:
        failures += 1
        print("FAIL expected LiveNode::run lock-blocking finding without "
              f"the allowlist, got exit {proc.returncode}")

    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
