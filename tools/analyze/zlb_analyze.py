#!/usr/bin/env python3
"""zlb_analyze — AST-grounded semantic analyzer for the ZLB sources.

Where tools/lint/zlb_lint.py pattern-matches *text*, this tool analyzes
*program semantics*: it parses the C++ sources into a program model
(records with typed fields, functions with parameter lists and bodies,
a call graph with receiver-type resolution) and discharges the protocol
invariants by dataflow over that model. Five checkers:

  lock-order      Builds the whole-program mutex-acquisition graph from
                  the annotated Mutex/MutexLock wrappers (including
                  Mutex& reference members unified through constructor
                  bindings) and reports (a) any cycle, interprocedurally
                  — per-TU -Wthread-safety cannot see these — and (b)
                  any edge contradicting the documented order
                  decisions_mutex_ > ledger_mutex_ > pipeline internals.
  epoch-taint     Proves, by dataflow from the Writer out through calls
                  (field types resolved through the record model), that
                  every *signing_bytes/*summary_bytes function
                  transitively binds an epoch field — the cross-epoch
                  replay guard of Alg. 1. Replaces the token-matching
                  epoch-signing regex, which any helper indirection or
                  stray identifier could fool.
  bounded-decode  Every allocation or raw buffer access in a decode
                  body must be dominated by a remaining-bytes check:
                  wire counts feeding reserve()/resize() must be proven
                  satisfiable by the remaining input (the canonical
                  primitive is Reader::length_prefix), and .data()/[]
                  arithmetic on wire buffers must sit under a size
                  comparison. An OOB-read/alloc-amplification proof
                  over input a colluding majority may have crafted.
  wire-schema     Statically derives each message's field sequence
                  (type, order, width) from encode bodies, checks
                  field-level encode/decode symmetry per record, and
                  diffs the extraction against the committed golden
                  (tools/analyze/wire_schema.golden.json) so any wire
                  format change is an explicit, reviewed event.
  lock-blocking   Scope-aware blocking-I/O-under-lock: tracks held-lock
                  scopes through the real brace structure and the call
                  graph, so blocking calls reached through any depth of
                  helpers are caught (the lexical rule only sees calls
                  spelled inside the lock scope), and flags potentially
                  throwing calls between manual lock()/unlock() pairs.

Frontends: with the clang Python bindings + a compilation database the
model is built from the real clang AST (tools/analyze/clang_frontend.py);
without them a pure-Python C++ parser produces the same model, so CI
degrades gracefully. `--frontend auto` (default) picks clang when
available.

Vetted exceptions live in an allowlist (see --allow), `checker:token`
lines where token is a function's qualified name, a record name, or a
path suffix. Every entry needs a justification comment; unused entries
are reported so the list cannot rot.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
Findings print as `file:line: [checker] message`.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<raw>R"\((?:.|\n)*?\)")
    | (?P<str>"(?:\\.|[^"\\\n])*")
    | (?P<chr>'(?:\\.|[^'\\\n])*')
    | (?P<num>\.?[0-9](?:[\w.']|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<p>::|->\*|->|\+\+|--|<<=|>>=|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|\|=|&=|\^=|\.\.\.|.)
    """,
    re.X,
)


@dataclass
class Tok:
    kind: str  # "id" | "num" | "str" | "chr" | "p"
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.text}@{self.line}"


def strip_preprocessor(text: str) -> str:
    """Blanks preprocessor directives (incl. continuations), keeps lines."""
    out: list[str] = []
    cont = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if cont or stripped.startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append("")
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


def tokenize(text: str) -> list[Tok]:
    toks: list[Tok] = []
    line = 1
    for m in TOKEN_RE.finditer(strip_preprocessor(text)):
        kind = m.lastgroup
        s = m.group(0)
        if kind in ("ws", "comment", "raw"):
            line += s.count("\n")
            continue
        if kind == "chr" and s == "'":
            # Stray quote (e.g. in a digit separator context we missed):
            # treat as punctuation, never worth failing a parse over.
            kind = "p"
        toks.append(Tok("p" if kind == "p" else kind, s, line))
        line += s.count("\n")
    return toks


def match_forward(toks: list[Tok], i: int, open_ch: str, close_ch: str) -> int:
    """Index of the token closing the group opened at i (which must be
    open_ch). Returns len(toks) when unbalanced."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == open_ch:
            depth += 1
        elif t == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks)


def skip_template_args_back(toks: list[Tok], i: int) -> int:
    """Given i at a '>' closing a template argument list, return the index
    of the matching '<' - 1. Best effort (no shift operators appear in
    the type positions we scan)."""
    depth = 0
    while i >= 0:
        t = toks[i].text
        if t == ">":
            depth += 1
        elif t == "<":
            depth -= 1
            if depth == 0:
                return i - 1
        i -= 1
    return -1


# ---------------------------------------------------------------------------
# Program model (shared between frontends)
# ---------------------------------------------------------------------------

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "throw",
    "new", "delete", "do", "else", "case", "static_assert", "decltype",
    "alignof", "co_await", "co_return", "co_yield", "assert",
}

ANNOTATION_MACROS = {
    "REQUIRES", "EXCLUDES", "ACQUIRE", "RELEASE", "TRY_ACQUIRE",
    "ASSERT_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "SCOPED_CAPABILITY", "CAPABILITY",
    "ACQUIRED_AFTER", "ACQUIRED_BEFORE", "RELEASE_SHARED", "ACQUIRE_SHARED",
}

POST_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable",
                   "volatile", "&", "&&", "inline", "constexpr"}


@dataclass
class Field_:
    type: str
    name: str


@dataclass
class Record:
    name: str            # unqualified (last component)
    qual: str            # Outer::Inner when nested
    fields: dict[str, Field_] = field(default_factory=dict)
    file: str = ""
    line: int = 0


@dataclass
class Func:
    name: str            # unqualified
    cls: str | None      # enclosing/owning record name (unqualified)
    qual: str            # "Class::name" or "name"
    params: list[Field_] = field(default_factory=list)
    body: list[Tok] = field(default_factory=list)  # includes braces
    file: str = ""
    line: int = 0
    annotations: list[str] = field(default_factory=list)  # e.g. REQUIRES(mu_)
    init_bindings: dict[str, str] = field(default_factory=dict)  # ctor: member -> init expr


@dataclass
class Program:
    records: dict[str, Record] = field(default_factory=dict)   # by unqualified name
    funcs: list[Func] = field(default_factory=list)
    by_name: dict[str, list[Func]] = field(default_factory=dict)
    by_qual: dict[str, list[Func]] = field(default_factory=dict)
    method_decl_annotations: dict[str, list[str]] = field(default_factory=dict)
    frontend: str = "python"

    def index(self) -> None:
        self.by_name.clear()
        self.by_qual.clear()
        for f in self.funcs:
            self.by_name.setdefault(f.name, []).append(f)
            self.by_qual.setdefault(f.qual, []).append(f)

    def annotations_of(self, f: Func) -> list[str]:
        return f.annotations + self.method_decl_annotations.get(f.qual, [])


# ---------------------------------------------------------------------------
# Pure-Python frontend: tokens -> Program
# ---------------------------------------------------------------------------

class PyFrontend:
    """Builds the program model with a lightweight recursive scanner.

    Not a full C++ parser — it understands exactly the shapes this
    codebase (and most disciplined C++) uses: namespaces, records with
    field/method declarations, free and member function definitions,
    constructor initializer lists, template headers (skipped), enums
    (skipped). Everything inside function bodies is kept as a token
    slice for the checkers' statement-level scans.
    """

    def __init__(self) -> None:
        self.program = Program()

    def parse_file(self, path: Path, text: str) -> None:
        toks = tokenize(text)
        self._scan(toks, 0, len(toks), str(path), record_ctx=None)

    # -- declarations ----------------------------------------------------

    def _scan(self, toks: list[Tok], i: int, end: int, file: str,
              record_ctx: str | None, record_qual: str = "") -> None:
        stmt_start = i
        while i < end:
            t = toks[i]
            txt = t.text
            if txt == "template":
                # skip the parameter list; the templated decl follows.
                if i + 1 < end and toks[i + 1].text == "<":
                    depth = 0
                    j = i + 1
                    while j < end:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    i = j + 1
                    continue
            if txt == "namespace":
                j = i + 1
                while j < end and toks[j].text != "{" and toks[j].text != ";":
                    j += 1
                if j < end and toks[j].text == "{":
                    close = match_forward(toks, j, "{", "}")
                    self._scan(toks, j + 1, close, file, record_ctx,
                               record_qual)
                    i = close + 1
                    stmt_start = i
                    continue
                i = j + 1
                stmt_start = i
                continue
            if txt == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = match_forward(toks, j, "{", "}")
                i = j + 1
                stmt_start = i
                continue
            if txt in ("struct", "class", "union") and i + 1 < end \
                    and toks[i + 1].kind == "id":
                # Possibly preceded by CAPABILITY(...) etc — irrelevant.
                name_idx = i + 1
                # skip annotation macros used as the "name" slot:
                # `class CAPABILITY("mutex") Mutex`.
                if toks[name_idx].text in ANNOTATION_MACROS:
                    j = name_idx + 1
                    if j < end and toks[j].text == "(":
                        j = match_forward(toks, j, "(", ")")
                        name_idx = j + 1
                    else:
                        name_idx = j
                if name_idx >= end or toks[name_idx].kind != "id":
                    i += 1
                    continue
                name = toks[name_idx].text
                if name in ANNOTATION_MACROS:
                    # SCOPED_CAPABILITY MutexLock — the macro came first.
                    name_idx += 1
                    if name_idx >= end or toks[name_idx].kind != "id":
                        i += 1
                        continue
                    name = toks[name_idx].text
                j = name_idx + 1
                while j < end and toks[j].text not in ("{", ";", "("):
                    j += 1
                if j < end and toks[j].text == "{":
                    close = match_forward(toks, j, "{", "}")
                    qual = f"{record_qual}::{name}" if record_qual else name
                    rec = self.program.records.setdefault(
                        name, Record(name=name, qual=qual, file=file,
                                     line=t.line))
                    self._scan_record(toks, j + 1, close, file, rec)
                    i = close + 1
                    stmt_start = i
                    continue
                i = j + 1
                stmt_start = i
                continue
            if txt == "{":
                # stray block (e.g. extern "C") — recurse transparently
                close = match_forward(toks, i, "{", "}")
                self._scan(toks, i + 1, close, file, record_ctx, record_qual)
                i = close + 1
                stmt_start = i
                continue
            if txt == "(" and i > stmt_start:
                consumed = self._try_function(toks, stmt_start, i, end, file,
                                              record_ctx)
                if consumed is not None:
                    i = consumed
                    stmt_start = i
                    continue
                # not a definition: skip the parens group
                i = match_forward(toks, i, "(", ")") + 1
                continue
            if txt == ";":
                i += 1
                stmt_start = i
                continue
            i += 1

    def _scan_record(self, toks: list[Tok], i: int, end: int, file: str,
                     rec: Record) -> None:
        stmt_start = i
        while i < end:
            t = toks[i]
            txt = t.text
            if txt in ("public", "private", "protected") and i + 1 < end \
                    and toks[i + 1].text == ":":
                i += 2
                stmt_start = i
                continue
            if txt in ("struct", "class", "enum", "union", "template",
                       "namespace"):
                save = i
                self._scan(toks, i, end, file, None, rec.qual)
                # _scan consumed from i onward; we cannot easily resume —
                # instead scan just this nested decl: find its extent.
                j = save
                if txt == "template":
                    if j + 1 < end and toks[j + 1].text == "<":
                        depth = 0
                        j += 1
                        while j < end:
                            if toks[j].text == "<":
                                depth += 1
                            elif toks[j].text == ">":
                                depth -= 1
                                if depth == 0:
                                    break
                            j += 1
                        i = j + 1
                        stmt_start = i
                        continue
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = match_forward(toks, j, "{", "}")
                    # struct X {...};  — consume trailing name/;
                    while j + 1 < end and toks[j + 1].text != ";":
                        j += 1
                i = j + 1
                stmt_start = i
                continue
            if txt == "(" and i > stmt_start:
                consumed = self._try_function(toks, stmt_start, i, end, file,
                                              rec.name)
                if consumed is not None:
                    i = consumed
                    stmt_start = i
                    continue
                # method DECLARATION (no body) or field with ctor init:
                close = match_forward(toks, i, "(", ")")
                name_i = i - 1
                if toks[name_i].kind == "id":
                    # collect post-) annotation macros for the decl
                    anns = self._post_annotations(toks, close + 1, end)[0]
                    if anns:
                        q = f"{rec.name}::{toks[name_i].text}"
                        self.program.method_decl_annotations.setdefault(
                            q, []).extend(anns)
                i = close + 1
                continue
            if txt == "{":
                i = match_forward(toks, i, "{", "}") + 1
                continue
            if txt == ";":
                self._try_field(toks, stmt_start, i, rec)
                i += 1
                stmt_start = i
                continue
            i += 1

    def _try_field(self, toks: list[Tok], start: int, semi: int,
                   rec: Record) -> None:
        seg = toks[start:semi]
        if not seg:
            return
        txts = [t.text for t in seg]
        if txts[0] in ("using", "friend", "typedef", "static_assert",
                       "public", "private", "protected", "template"):
            return
        if "(" in txts:
            return  # method decl handled elsewhere
        # name = last id before '=' or '{' or end
        stop = len(seg)
        for k, t in enumerate(seg):
            if t.text in ("=", "{"):
                stop = k
                break
        name = None
        for t in reversed(seg[:stop]):
            if t.kind == "id" and t.text not in ("const", "mutable",
                                                 "static", "constexpr",
                                                 "inline", "volatile"):
                name = t.text
                break
        if name is None:
            return
        type_toks = []
        for t in seg[:stop]:
            if t.text == name and t is seg[:stop][-1]:
                break
            type_toks.append(t.text)
        # drop the trailing name occurrence from the type
        if type_toks and type_toks[-1] == name:
            type_toks.pop()
        type_str = " ".join(x for x in type_toks
                            if x not in ("static", "mutable", "inline"))
        if not type_str:
            return
        if any(t.text in ANNOTATION_MACROS for t in seg):
            # strip GUARDED_BY(...) etc from the type
            type_str = re.sub(
                r"\b(?:%s)\s*(?:\([^)]*\))?" % "|".join(ANNOTATION_MACROS),
                "", type_str).strip()
        rec.fields[name] = Field_(type=type_str, name=name)

    def _post_annotations(self, toks: list[Tok], i: int,
                          end: int) -> tuple[list[str], int]:
        """Collects REQUIRES(x)/EXCLUDES(x)/... after a ')' until a
        terminator; returns (annotations, index at terminator)."""
        anns: list[str] = []
        while i < end:
            t = toks[i].text
            if t in POST_QUALIFIERS:
                i += 1
                continue
            if t == "[" and i + 1 < end and toks[i + 1].text == "[":
                depth = 0
                while i < end:
                    if toks[i].text == "[":
                        depth += 1
                    elif toks[i].text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                i += 1
                continue
            if t == "->":  # trailing return type: skip to '{' ';' or ':'
                while i < end and toks[i].text not in ("{", ";"):
                    i += 1
                continue
            if toks[i].kind == "id" and t in ANNOTATION_MACROS:
                j = i + 1
                if j < end and toks[j].text == "(":
                    close = match_forward(toks, j, "(", ")")
                    arg = "".join(x.text for x in toks[j + 1:close])
                    anns.append(f"{t}({arg})")
                    i = close + 1
                else:
                    anns.append(t)
                    i = j
                continue
            break
        return anns, i

    def _try_function(self, toks: list[Tok], stmt_start: int, paren: int,
                      end: int, file: str,
                      record_ctx: str | None) -> int | None:
        """If the '(' at `paren` opens a function definition, record it
        and return the index just past its body. Else None."""
        name_i = paren - 1
        if name_i < stmt_start:
            return None
        nt = toks[name_i]
        if nt.text == ">":
            return None  # templated call / cast in a decl position
        if nt.kind != "id" or nt.text in CONTROL_KEYWORDS:
            return None
        if nt.text in ANNOTATION_MACROS:
            return None
        # qualified name path: walk back over (id ::)* and destructor '~'
        path = [nt.text]
        j = name_i - 1
        while j - 1 >= stmt_start and toks[j].text == "::" \
                and toks[j - 1].kind == "id":
            path.insert(0, toks[j - 1].text)
            j -= 2
        # there must be SOMETHING type-ish before the name, unless this
        # is a constructor (name == class) or qualified definition.
        close = match_forward(toks, paren, "(", ")")
        if close >= end:
            return None
        anns, k = self._post_annotations(toks, close + 1, end)
        init_bindings: dict[str, str] = {}
        if k < end and toks[k].text == ":":
            # constructor initializer list
            k += 1
            while k < end and toks[k].text != "{":
                if toks[k].kind == "id" and k + 1 < end \
                        and toks[k + 1].text in ("(", "{"):
                    member = toks[k].text
                    opener = toks[k + 1].text
                    closer = ")" if opener == "(" else "}"
                    c2 = match_forward(toks, k + 1, opener, closer)
                    expr = "".join(x.text for x in toks[k + 2:c2])
                    init_bindings[member] = expr
                    k = c2 + 1
                else:
                    k += 1
        if k >= end or toks[k].text != "{":
            return None
        body_close = match_forward(toks, k, "{", "}")
        if body_close >= end:
            return None

        name = path[-1]
        if name == "operator" or "operator" in path:
            return self._finish(body_close)
        cls = path[-2] if len(path) >= 2 else record_ctx
        if name.startswith("~"):
            return self._finish(body_close)
        # parameters
        params: list[Field_] = []
        depth = 0
        seg: list[Tok] = []
        for t in toks[paren:close + 1]:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            if t.text in (")", ">", "]", "}"):
                depth -= 1
            if (t.text == "," and depth == 1) or (t.text == ")" and depth == 0):
                inner = seg[1:] if seg and seg[0].text == "(" else seg
                p = self._parse_param(inner)
                if p:
                    params.append(p)
                seg = [Tok("p", "(", t.line)]
                continue
            seg.append(t)

        fn = Func(
            name=name, cls=cls,
            qual=f"{cls}::{name}" if cls else name,
            params=params, body=toks[k:body_close + 1], file=file,
            line=nt.line, annotations=anns, init_bindings=init_bindings)
        self.program.funcs.append(fn)
        return self._finish(body_close)

    @staticmethod
    def _finish(body_close: int) -> int:
        return body_close + 1

    @staticmethod
    def _parse_param(seg: list[Tok]) -> Field_ | None:
        seg = [t for t in seg if t.text not in ("const", "volatile")]
        if not seg:
            return None
        if len(seg) == 1 and seg[0].text == "void":
            return None
        name = None
        if seg[-1].kind == "id":
            name = seg[-1].text
            type_toks = seg[:-1]
        else:
            type_toks = seg
        type_str = " ".join(t.text for t in type_toks)
        if not type_str and name:
            # `Writer` alone: unnamed param of type Writer
            type_str, name = name, ""
        return Field_(type=type_str, name=name or "")


def load_python_frontend(files: dict[Path, str]) -> Program:
    fe = PyFrontend()
    for path in sorted(files):
        fe.parse_file(path, files[path])
    fe.program.index()
    fe.program.frontend = "python"
    return fe.program


# ---------------------------------------------------------------------------
# Body scanning utilities (work on token slices)
# ---------------------------------------------------------------------------

@dataclass
class Call:
    idx: int                 # token index of the name
    line: int
    name: str                # callee (last path component)
    path: list[str]          # qualified path, e.g. ["InstanceKey","decode"]
    recv: list[str]          # receiver chain, e.g. ["m","members"]
    args: list[list[Tok]]    # top-level argument token slices
    close: int               # index of the closing ')'


def iter_calls(body: list[Tok]) -> list[Call]:
    calls: list[Call] = []
    for i, t in enumerate(body):
        if t.text != "(" or i == 0:
            continue
        nt = body[i - 1]
        if nt.kind != "id" or nt.text in CONTROL_KEYWORDS:
            continue
        # path backwards over ::
        path = [nt.text]
        j = i - 2
        while j - 1 >= 0 and body[j].text == "::" and body[j - 1].kind == "id":
            path.insert(0, body[j - 1].text)
            j -= 2
        # receiver chain backwards over . / ->
        recv: list[str] = []
        k = i - 1 - (2 * (len(path) - 1)) - 1
        while k - 1 >= 0 and body[k].text in (".", "->") \
                and body[k - 1].kind == "id":
            recv.insert(0, body[k - 1].text)
            k -= 2
        close = match_forward(body, i, "(", ")")
        if close >= len(body):
            continue
        args: list[list[Tok]] = []
        depth = 0
        cur: list[Tok] = []
        for t2 in body[i:close + 1]:
            if t2.text in ("(", "<", "[", "{"):
                depth += 1
            if t2.text in (")", ">", "]", "}"):
                depth -= 1
            if (t2.text == "," and depth == 1) or \
               (t2.text == ")" and depth == 0):
                inner = cur[1:] if cur and cur[0].text == "(" else cur
                if inner:
                    args.append(inner)
                cur = [Tok("p", "(", t2.line)]
                continue
            cur.append(t2)
        calls.append(Call(idx=i - 1, line=nt.line, name=nt.text, path=path,
                          recv=recv, args=args, close=close))
    return calls


TYPE_NOISE = {"const", "std", "::", "&", "*", "<", ">", ",", "common",
              "zlb", "chain", "consensus", "net", "sync", "asmr", "crypto",
              "bm", "obs", "mc", "sim"}


def base_type(type_str: str) -> str:
    """Last meaningful type identifier: 'const common::Mutex &' -> Mutex,
    'std::vector<SignedVote>' -> vector (use element_type for the T)."""
    ids = re.findall(r"[A-Za-z_]\w*", type_str)
    ids = [x for x in ids if x not in ("const", "std", "volatile", "mutable",
                                       "unsigned", "signed", "typename")]
    # drop namespace qualifiers: keep the id right before a template open
    m = re.search(r"([A-Za-z_]\w*)\s*<", type_str)
    if m:
        return m.group(1)
    return ids[-1] if ids else ""


def element_type(type_str: str) -> str | None:
    """vector<X>/array<X,N>/optional<X>/map<K,V>(V) element type name."""
    m = re.search(r"(?:vector|set|deque|optional|unique_ptr|shared_ptr)\s*<\s*"
                  r"([A-Za-z_][\w:]*)", type_str)
    if m:
        return m.group(1).split("::")[-1]
    m = re.search(r"map\s*<[^,]+,\s*([A-Za-z_][\w:]*)", type_str)
    if m:
        return m.group(1).split("::")[-1]
    m = re.search(r"array\s*<\s*([A-Za-z_][\w:]*)", type_str)
    if m:
        return m.group(1).split("::")[-1]
    return None


def local_decls(body: list[Tok]) -> dict[str, str]:
    """name -> type string for locals declared `Type name ...` in a body.
    Heuristic: an id-path (possibly templated / ref-qualified) followed
    by an id followed by one of ';=,({' at statement position."""
    out: dict[str, str] = {}
    i = 0
    n = len(body)
    stmt_start = 0
    while i < n:
        t = body[i]
        if t.text in (";", "{", "}", ":") and not (
                t.text == ":" and i > 0 and body[i - 1].text == ":"):
            stmt_start = i + 1
            i += 1
            continue
        if t.kind == "id" and i + 1 < n and body[i + 1].text in \
                (";", "=", "(", "{", ",") and i > stmt_start:
            # type tokens = stmt_start..i-1 if they look like a type
            seg = body[stmt_start:i]
            if seg and all(x.kind in ("id", "p") for x in seg):
                txts = [x.text for x in seg]
                if txts and txts[-1] in ("&", "*"):
                    txts = txts[:-1]
                if txts and txts[-1] not in (".", "->", "::", "=", ",", "(",
                                             ")", "return") \
                        and not any(x in ("return", "=", ".", "->", "==",
                                          "!=", "<=", ">=", "+", "-",
                                          "throw", "delete", "new")
                                    for x in txts) \
                        and any(x.kind == "id" for x in seg):
                    type_str = " ".join(txts)
                    if type_str.strip(" &*"):
                        out.setdefault(t.text, type_str)
        i += 1
    return out


def range_for_loops(body: list[Tok]):
    """Yields (decl_toks, expr_toks, body_slice, header_index) for
    `for (decl : expr) {body}` loops."""
    for i, t in enumerate(body):
        if t.text != "for" or i + 1 >= len(body) or body[i + 1].text != "(":
            continue
        close = match_forward(body, i + 1, "(", ")")
        if close >= len(body):
            continue
        inner = body[i + 2:close]
        if any(x.text == ";" for x in inner):
            continue  # classic for
        colon = None
        depth = 0
        for k, x in enumerate(inner):
            if x.text in ("(", "<", "[", "{"):
                depth += 1
            elif x.text in (")", ">", "]", "}"):
                depth -= 1
            elif x.text == ":" and depth == 0 and not (
                    k > 0 and inner[k - 1].text == ":"):
                colon = k
                break
        if colon is None:
            continue
        decl, expr = inner[:colon], inner[colon + 1:]
        j = close + 1
        if j < len(body) and body[j].text == "{":
            bclose = match_forward(body, j, "{", "}")
            yield decl, expr, body[j:bclose + 1], i
        else:
            # single statement
            k = j
            while k < len(body) and body[k].text != ";":
                k += 1
            yield decl, expr, body[j:k + 1], i


def classic_for_loops(body: list[Tok]):
    """Yields (cond_toks, body_slice, header_index)."""
    for i, t in enumerate(body):
        if t.text != "for" or i + 1 >= len(body) or body[i + 1].text != "(":
            continue
        close = match_forward(body, i + 1, "(", ")")
        if close >= len(body):
            continue
        inner = body[i + 2:close]
        semis = [k for k, x in enumerate(inner) if x.text == ";"]
        if len(semis) < 2:
            continue
        cond = inner[semis[0] + 1:semis[1]]
        j = close + 1
        if j < len(body) and body[j].text == "{":
            bclose = match_forward(body, j, "{", "}")
            yield cond, body[j:bclose + 1], i
        else:
            k = j
            while k < len(body) and body[k].text != ";":
                k += 1
            yield cond, body[j:k + 1], i


# ---------------------------------------------------------------------------
# Findings / allowlist
# ---------------------------------------------------------------------------

@dataclass
class Finding:
    file: str
    line: int
    checker: str
    msg: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.checker}] {self.msg}"

    def as_json(self) -> dict:
        return {"file": self.file, "line": self.line,
                "checker": self.checker, "message": self.msg}


class Allowlist:
    def __init__(self, path: Path | None):
        self.entries: dict[str, set[str]] = {}
        self.used: set[tuple[str, str]] = set()
        if path is not None and path.exists():
            for raw in path.read_text().splitlines():
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                checker, _, token = line.partition(":")
                self.entries.setdefault(checker.strip(), set()).add(
                    token.strip())

    def allowed(self, checker: str, *tokens: str) -> bool:
        for token in tokens:
            if not token:
                continue
            for entry in self.entries.get(checker, ()):
                if token == entry or token.endswith(entry):
                    self.used.add((checker, entry))
                    return True
        return False

    def unused(self) -> list[tuple[str, str]]:
        out = []
        for checker, toks in sorted(self.entries.items()):
            for tok in sorted(toks):
                if (checker, tok) not in self.used:
                    out.append((checker, tok))
        return out


# ---------------------------------------------------------------------------
# Analyzer core
# ---------------------------------------------------------------------------

EPOCH_RE = re.compile(r"epoch", re.I)
SIGNING_SINK = re.compile(r"(^|_)(signing_bytes|summary_bytes)$")
WIRE_READS = {"u8", "u16", "u32", "u64", "i64", "varint", "boolean",
              "raw", "bytes", "string"}
COUNT_READS = {"u16", "u32", "u64", "i64", "varint"}
ENCODE_NAMES = re.compile(r"^(encode|encode_\w+|serialize)$")
DECODE_NAMES = re.compile(r"^(decode|decode_\w+|deserialize)$")
BLOCKING_LEAVES = {
    "fopen", "fclose", "fread", "fwrite", "fflush", "fsync", "fdatasync",
    "sleep_for", "sleep_until", "poll", "connect", "accept", "recv", "send",
    "sendto", "recvfrom", "read", "write", "rename", "remove", "getline",
    "open", "close", "fputs", "fgets", "unlink", "flush",
}
# Writer/Reader and the annotated mutex wrapper are the verified trusted
# core: their internals are exactly the bounds/locking machinery the
# checkers assume, so they are modeled, not re-checked.
TRUSTED_CORE_FILES = ("src/common/serde.cpp", "src/common/serde.hpp",
                      "src/common/mutex.hpp", "src/common/bytes.hpp",
                      "src/common/bytes.cpp")

# The documented whole-program lock order, outermost first (see the
# LiveNode threading-model comment). Locks at the same rank are leaves
# that must never nest into each other.
DOC_LOCK_ORDER: list[list[str]] = [
    ["LiveNode::decisions_mutex_"],
    ["LiveNode::ledger_mutex_"],
    ["CommitPipeline::mu_", "ThreadPool::mu_"],
]


class Analyzer:
    def __init__(self, program: Program, allow: Allowlist,
                 schema_allow_unpaired: set[str] | None = None):
        self.p = program
        self.allow = allow
        self.findings: list[Finding] = []

    # -- shared resolution helpers --------------------------------------

    def func_scope_types(self, fn: Func) -> dict[str, str]:
        """name -> type string for params, locals and enclosing-class
        fields visible in fn's body."""
        scope: dict[str, str] = {}
        if fn.cls and fn.cls in self.p.records:
            for f_ in self.p.records[fn.cls].fields.values():
                scope[f_.name] = f_.type
        for prm in fn.params:
            if prm.name:
                scope[prm.name] = prm.type
        scope.update(local_decls(fn.body))
        return scope

    def resolve_chain_type(self, chain: list[str], fn: Func,
                           scope: dict[str, str]) -> str | None:
        """Type name of a.b.c receiver chains, through the record model."""
        if not chain:
            return fn.cls
        cur: str | None = None
        first = chain[0]
        if first == "this":
            cur = fn.cls
            rest = chain[1:]
        elif first in scope:
            cur = base_type(scope[first])
            rest = chain[1:]
        elif first in self.p.records:
            cur = first
            rest = chain[1:]
        else:
            return None
        for part in rest:
            if cur is None:
                return None
            rec = self.p.records.get(cur)
            if rec is None or part not in rec.fields:
                return None
            cur = base_type(rec.fields[part].type)
        return cur

    def resolve_call_targets(self, call: Call, fn: Func,
                             scope: dict[str, str]) -> list[Func]:
        """Callee candidates, narrowed by receiver type / same class."""
        cands = self.p.by_name.get(call.name, [])
        if not cands:
            return []
        if len(call.path) >= 2:  # X::f(...)
            qual = "::".join(call.path[-2:])
            exact = self.p.by_qual.get(qual, [])
            if exact:
                return exact
        if call.recv:
            rt = self.resolve_chain_type(call.recv, fn, scope)
            if rt is not None:
                narrowed = [c for c in cands if c.cls == rt]
                if narrowed:
                    return narrowed
                elem = None
                if call.recv[-1] in scope:
                    elem = element_type(scope[call.recv[-1]])
                if elem:
                    narrowed = [c for c in cands if c.cls == elem]
                    if narrowed:
                        return narrowed
                return []  # typed receiver, no model match: std:: etc.
            # untyped receiver (e.g. chained call): be conservative
            return cands
        # bare call: prefer same-class method, then free functions
        if fn.cls:
            same = [c for c in cands if c.cls == fn.cls]
            if same:
                return same
        free = [c for c in cands if c.cls is None]
        return free or cands

    # ==================================================================
    # Checker 1: lock-order
    # ==================================================================

    def lock_id(self, expr: str, fn: Func, scope: dict[str, str],
                alias: dict[str, str]) -> str | None:
        """Canonical lock class for a mutex expression in fn's scope."""
        name = expr.strip().lstrip("*&")
        if not re.fullmatch(r"[A-Za-z_]\w*", name):
            # chained expressions (rare) — use the final component
            parts = re.findall(r"[A-Za-z_]\w*", name)
            if not parts:
                return None
            name = parts[-1]
        t = scope.get(name, "")
        if "Mutex" not in t and name not in (
                f.name for f in (self.p.records.get(fn.cls or "") or
                                 Record("", "")).fields.values()):
            if "Mutex" not in t:
                # not resolvable as a mutex in scope: could still be a
                # member referenced in an out-of-line method.
                pass
        owner = None
        if fn.cls and fn.cls in self.p.records \
                and name in self.p.records[fn.cls].fields:
            owner = fn.cls
        elif name in scope and name in local_decls(fn.body):
            lid = f"{fn.qual}::{name}"
            return alias.get(lid, lid)
        elif name in scope:  # parameter
            lid = f"{fn.qual}::{name}"
            return alias.get(lid, lid)
        lid = f"{owner}::{name}" if owner else f"{fn.qual}::{name}"
        return alias.get(lid, lid)

    def mutex_members(self) -> dict[str, Field_]:
        out = {}
        for rec in self.p.records.values():
            for f_ in rec.fields.values():
                bt = base_type(f_.type)
                if bt == "Mutex":
                    out[f"{rec.name}::{f_.name}"] = f_
        return out

    def build_lock_aliases(self) -> dict[str, str]:
        """Unifies Mutex& members/params with the mutex bound at the
        construction site (e.g. CommitPipeline::ledger_mu_ ==
        LiveNode::ledger_mutex_)."""
        alias: dict[str, str] = {}
        # member -> ctor param position, via initializer lists
        for fn in self.p.funcs:
            if fn.cls is None or fn.name != fn.cls or not fn.init_bindings:
                continue
            rec = self.p.records.get(fn.cls)
            if rec is None:
                continue
            for member, init_expr in fn.init_bindings.items():
                f_ = rec.fields.get(member)
                if f_ is None or base_type(f_.type) != "Mutex":
                    continue
                if not re.fullmatch(r"[A-Za-z_]\w*", init_expr):
                    continue
                pidx = next((i for i, p in enumerate(fn.params)
                             if p.name == init_expr), None)
                if pidx is None:
                    continue
                # find construction sites of fn.cls and the pidx-th arg
                for caller in self.p.funcs:
                    if caller.cls == fn.cls:
                        continue
                    for call in iter_calls(caller.body):
                        ctor_hit = (call.name == fn.cls or
                                    (call.name in ("make_unique",
                                                   "make_shared",
                                                   "emplace") and
                                     any(x.text == fn.cls for x in
                                         caller.body[max(0, call.idx - 6):
                                                     call.idx])))
                        if not ctor_hit or pidx >= len(call.args):
                            continue
                        argtxt = "".join(t.text for t in call.args[pidx])
                        if not re.fullmatch(r"[A-Za-z_]\w*", argtxt):
                            continue
                        cscope = self.func_scope_types(caller)
                        if caller.cls and caller.cls in self.p.records and \
                                argtxt in self.p.records[caller.cls].fields:
                            alias[f"{fn.cls}::{member}"] = \
                                f"{caller.cls}::{argtxt}"
                            alias[f"{fn.qual}::{init_expr}"] = \
                                f"{caller.cls}::{argtxt}"
                        elif argtxt in cscope:
                            alias[f"{fn.cls}::{member}"] = \
                                f"{caller.qual}::{argtxt}"
        # Methods of a class with an aliased Mutex& member use the member
        # name; map those too (handled by lock_id via alias table).
        return alias

    def function_acquisitions(self, fn: Func, alias: dict[str, str]):
        """Scans fn's body: yields ('acq', lock, line, depth_at_acq,
        scope_close_idx) for MutexLock RAII acquisitions, plus manual
        .lock()/.unlock() events, and ('call', Call, held_locks)."""
        body = fn.body
        scope = self.func_scope_types(fn)
        events = []
        held: list[tuple[str, int, int]] = []  # (lock, close_idx, line)
        manual: list[str] = []
        for i, t in enumerate(body):
            # expire RAII scopes
            while held and i > held[-1][1]:
                held.pop()
            if t.kind != "id":
                continue
            if t.text == "MutexLock" and i + 1 < len(body):
                j = i + 1
                if body[j].kind == "id" and j + 1 < len(body) and \
                        body[j + 1].text == "(":
                    close = match_forward(body, j + 1, "(", ")")
                    expr = "".join(x.text for x in body[j + 2:close])
                    lock = self.lock_id(expr, fn, scope, alias)
                    if lock:
                        # scope = enclosing brace: find it by scanning
                        # back for the nearest unclosed '{'
                        close_idx = self._enclosing_scope_end(body, i)
                        events.append(("acq", lock, t.line,
                                       [h[0] for h in held]))
                        held.append((lock, close_idx, t.line))
                continue
            if t.text in ("lock", "unlock") and i >= 2 and \
                    body[i - 1].text in (".", "->") and \
                    i + 1 < len(body) and body[i + 1].text == "(":
                expr = body[i - 2].text
                lock = self.lock_id(expr, fn, scope, alias)
                if lock:
                    if t.text == "lock":
                        events.append(("acq", lock, t.line,
                                       [h[0] for h in held] + manual))
                        manual.append(lock)
                        events.append(("manual_lock", lock, t.line, i))
                    else:
                        if lock in manual:
                            manual.remove(lock)
                        events.append(("manual_unlock", lock, t.line, i))
                continue
        # call events with held sets (second pass, RAII scopes only —
        # good enough: manual lock() is banned outside the trusted core)
        held = []
        calls = iter_calls(body)
        ci = 0
        for i, t in enumerate(body):
            while held and i > held[-1][1]:
                held.pop()
            if t.text == "MutexLock" and i + 1 < len(body) and \
                    body[i + 1].kind == "id" and i + 2 < len(body) and \
                    body[i + 2].text == "(":
                close = match_forward(body, i + 2, "(", ")")
                expr = "".join(x.text for x in body[i + 3:close])
                lock = self.lock_id(expr, fn, scope, alias)
                if lock:
                    close_idx = self._enclosing_scope_end(body, i)
                    held.append((lock, close_idx, t.line))
                continue
            while ci < len(calls) and calls[ci].idx < i:
                ci += 1
            if ci < len(calls) and calls[ci].idx == i and held:
                c = calls[ci]
                if c.name not in ("MutexLock",):
                    events.append(("call", c, [h[0] for h in held], fn))
        return events

    @staticmethod
    def _enclosing_scope_end(body: list[Tok], i: int) -> int:
        """Index of the '}' closing the innermost scope containing i."""
        depth = 0
        j = i
        while j < len(body):
            if body[j].text == "{":
                depth += 1
            elif body[j].text == "}":
                if depth == 0:
                    return j
                depth -= 1
            j += 1
        return len(body) - 1

    def check_lock_order(self) -> None:
        alias = self.build_lock_aliases()
        # per-function direct acquisitions + call events
        fn_events = {}
        known_locks = set(self.mutex_members())
        for lid, target in alias.items():
            known_locks.add(target)
        for fn in self.p.funcs:
            if fn.file.replace("\\", "/").endswith(TRUSTED_CORE_FILES):
                continue
            fn_events[fn.qual] = self.function_acquisitions(fn, alias)

        def is_real_lock(lock: str) -> bool:
            # Only mutex members / aliased refs / locals of Mutex type
            # produce edges; unresolved names would pollute the graph.
            if lock in known_locks:
                return True
            cls, _, nm = lock.rpartition("::")
            rec = self.p.records.get(cls.split("::")[-1]) if cls else None
            if rec and nm in rec.fields and \
                    base_type(rec.fields[nm].type) == "Mutex":
                return True
            return False

        # acquires*(f): locks f acquires directly or transitively.
        direct_acq: dict[str, set[str]] = {}
        for qual, events in fn_events.items():
            fns = self.p.by_qual.get(qual, [])
            anns = self.p.annotations_of(fns[0]) if fns else []
            req = {a[len("REQUIRES("):-1] for a in anns
                   if a.startswith("REQUIRES(")}
            acq = set()
            for e in events:
                if e[0] == "acq" and is_real_lock(e[1]):
                    nm = e[1].rpartition("::")[2]
                    if nm not in req:
                        acq.add(e[1])
            direct_acq[qual] = acq

        trans_acq = {q: set(s) for q, s in direct_acq.items()}
        for _ in range(6):  # bounded fixpoint
            changed = False
            for qual, events in fn_events.items():
                fns = self.p.by_qual.get(qual, [])
                if not fns:
                    continue
                fn = fns[0]
                scope = self.func_scope_types(fn)
                for e in events:
                    if e[0] != "call":
                        continue
                    call = e[1]
                    for tgt in self.resolve_call_targets(call, fn, scope):
                        extra = trans_acq.get(tgt.qual, set())
                        if extra - trans_acq[qual]:
                            trans_acq[qual] |= extra
                            changed = True
            # also propagate through calls with no lock held (a caller
            # of f inherits f's acquisitions regardless of held state)
            for fn in self.p.funcs:
                if fn.qual not in trans_acq:
                    continue
                scope = self.func_scope_types(fn)
                for call in iter_calls(fn.body):
                    for tgt in self.resolve_call_targets(call, fn, scope):
                        extra = trans_acq.get(tgt.qual, set())
                        if extra - trans_acq[fn.qual]:
                            trans_acq[fn.qual] |= extra
                            changed = True
            if not changed:
                break

        # edges
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        for qual, events in fn_events.items():
            fns = self.p.by_qual.get(qual, [])
            if not fns:
                continue
            fn = fns[0]
            scope = self.func_scope_types(fn)
            for e in events:
                if e[0] == "acq":
                    _, lock, line, held = e
                    if not is_real_lock(lock):
                        continue
                    for h in held:
                        if is_real_lock(h) and h != lock:
                            edges.setdefault((h, lock), (fn.file, line))
                elif e[0] == "call":
                    call, held = e[1], e[2]
                    for tgt in self.resolve_call_targets(call, fn, scope):
                        # REQUIRES(l) callees don't re-acquire l
                        anns = self.p.annotations_of(tgt)
                        req = {a[len("REQUIRES("):-1] for a in anns
                               if a.startswith("REQUIRES(")}
                        for acquired in trans_acq.get(tgt.qual, ()):  #
                            nm = acquired.rpartition("::")[2]
                            if nm in req:
                                continue
                            for h in held:
                                if is_real_lock(h) and is_real_lock(acquired) \
                                        and h != acquired:
                                    edges.setdefault((h, acquired),
                                                     (fn.file, call.line))

        # cycles (DFS over the lock graph)
        graph: dict[str, set[str]] = {}
        for (a, b) in edges:
            graph.setdefault(a, set()).add(b)
        state: dict[str, int] = {}
        stack: list[str] = []
        cycles: list[list[str]] = []

        def dfs(v: str) -> None:
            state[v] = 1
            stack.append(v)
            for w in sorted(graph.get(v, ())):
                if state.get(w, 0) == 0:
                    dfs(w)
                elif state.get(w) == 1:
                    k = stack.index(w)
                    cyc = stack[k:] + [w]
                    cycles.append(cyc)
            stack.pop()
            state[v] = 2

        for v in sorted(graph):
            if state.get(v, 0) == 0:
                dfs(v)
        seen_cyc = set()
        for cyc in cycles:
            key = frozenset(cyc)
            if key in seen_cyc:
                continue
            seen_cyc.add(key)
            wfile, wline = edges.get((cyc[0], cyc[1]), ("<graph>", 0))
            if self.allow.allowed("lock-order", *cyc):
                continue
            self.findings.append(Finding(
                wfile, wline, "lock-order",
                "mutex acquisition cycle: " + " -> ".join(cyc) +
                " (a thread in each arc deadlocks the other)"))

        # documented order
        rank: dict[str, int] = {}
        for r, group in enumerate(DOC_LOCK_ORDER):
            for lock in group:
                rank[lock] = r
        for (a, b), (wfile, wline) in sorted(edges.items()):
            if a in rank and b in rank and rank[a] >= rank[b]:
                if self.allow.allowed("lock-order", a, b,
                                      f"{a}>{b}"):
                    continue
                self.findings.append(Finding(
                    wfile, wline, "lock-order",
                    f"acquires {b} while holding {a}, contradicting the "
                    "documented order decisions_mutex_ > ledger_mutex_ > "
                    "pipeline internals"))

    # ==================================================================
    # Checker 2: epoch-taint
    # ==================================================================

    def writer_vars(self, fn: Func) -> set[str]:
        out = set()
        for prm in fn.params:
            if "Writer" in prm.type and prm.name:
                out.add(prm.name)
        for name, t in local_decls(fn.body).items():
            if base_type(t) == "Writer":
                out.add(name)
        return out

    def binds_epoch_map(self) -> dict[str, bool]:
        binds: dict[str, bool] = {}
        funcs = [f for f in self.p.funcs if self.writer_vars(f)]
        for fn in funcs:
            binds[fn.qual] = False

        def direct(fn: Func, writers: set[str]) -> bool:
            for call in iter_calls(fn.body):
                if call.recv and call.recv[-1] in writers and \
                        call.name in WIRE_READS | {"encode"}:
                    argtxt = " ".join(t.text for a in call.args for t in a)
                    if EPOCH_RE.search(argtxt):
                        return True
            return False

        for fn in funcs:
            if direct(fn, self.writer_vars(fn)):
                binds[fn.qual] = True

        for _ in range(8):
            changed = False
            for fn in funcs:
                if binds[fn.qual]:
                    continue
                writers = self.writer_vars(fn)
                scope = self.func_scope_types(fn)
                for call in iter_calls(fn.body):
                    passes_writer = any(
                        len(a) == 1 and a[0].text in writers
                        for a in call.args)
                    recv_writer = bool(call.recv) and call.recv[-1] in writers
                    if not passes_writer and not recv_writer:
                        continue
                    if recv_writer:
                        continue  # w.u32(x) handled by direct()
                    for tgt in self.resolve_call_targets(call, fn, scope):
                        if binds.get(tgt.qual):
                            binds[fn.qual] = True
                            changed = True
                            break
                    if binds[fn.qual]:
                        break
            if not changed:
                break
        return binds

    def check_epoch_taint(self) -> None:
        binds = self.binds_epoch_map()
        for fn in self.p.funcs:
            if not SIGNING_SINK.search(fn.name):
                continue
            if not self.writer_vars(fn):
                continue
            if binds.get(fn.qual):
                continue
            if self.allow.allowed("epoch-taint", fn.qual, fn.name, fn.file):
                continue
            self.findings.append(Finding(
                fn.file, fn.line, "epoch-taint",
                f"{fn.qual} never binds an epoch field into its signed "
                "bytes (checked through the call graph and record field "
                "types): the signature is replayable across membership "
                "generations"))

    # ==================================================================
    # Checker 3: bounded-decode
    # ==================================================================

    def reader_vars(self, fn: Func) -> set[str]:
        out = set()
        for prm in fn.params:
            if "Reader" in prm.type and prm.name:
                out.add(prm.name)
        for name, t in local_decls(fn.body).items():
            if base_type(t) == "Reader":
                out.add(name)
        return out

    def check_bounded_decode(self) -> None:
        for fn in self.p.funcs:
            posix = fn.file.replace("\\", "/")
            if posix.endswith(TRUSTED_CORE_FILES):
                continue
            readers = self.reader_vars(fn)
            decodeish = bool(DECODE_NAMES.match(fn.name)) or bool(readers)
            if not decodeish:
                continue
            body = fn.body
            texts = [t.text for t in body]

            # (a) wire counts feeding allocations must be guarded
            count_vars: dict[str, int] = {}  # name -> decl token idx
            guarded: set[str] = set()
            i = 0
            while i < len(body) - 4:
                # pattern:  NAME = r.METHOD(  where METHOD reads a count
                if body[i].kind == "id" and body[i + 1].text == "=" and \
                        i + 4 < len(body) and body[i + 2].kind == "id" and \
                        body[i + 2].text in readers and \
                        body[i + 3].text in (".", "->") and \
                        body[i + 4].kind == "id":
                    m = body[i + 4].text
                    if m in COUNT_READS:
                        count_vars[body[i].text] = i
                    elif m == "length_prefix":
                        count_vars[body[i].text] = i
                        guarded.add(body[i].text)  # guarded at the source
                i += 1
            # guard conditions: any condition mentioning var AND
            # remaining/size before its allocation use
            cond_spans = []  # (start, end) token ranges of conditions
            for i, t in enumerate(body):
                if t.text in ("if", "while") and i + 1 < len(body) and \
                        body[i + 1].text == "(":
                    close = match_forward(body, i + 1, "(", ")")
                    cond_spans.append((i + 1, close))
            for cond, loop_body, hdr in classic_for_loops(body):
                pass  # loop conditions bound trip counts, not allocs

            def guarded_before(var: str, use_idx: int) -> bool:
                if var in guarded:
                    return True
                for (s, e) in cond_spans:
                    if s > use_idx:
                        continue
                    span = texts[s:e]
                    if var in span and any(
                            x in ("remaining", "size") for x in span):
                        return True
                return False

            for i, t in enumerate(body):
                if t.text in ("reserve", "resize") and i >= 2 and \
                        body[i - 1].text in (".", "->") and \
                        i + 1 < len(body) and body[i + 1].text == "(":
                    close = match_forward(body, i + 1, "(", ")")
                    arg_ids = [x.text for x in body[i + 2:close]
                               if x.kind == "id"]
                    bad = [v for v in arg_ids if v in count_vars
                           and not guarded_before(v, i)]
                    for v in bad:
                        if self.allow.allowed("bounded-decode", fn.qual,
                                              fn.file):
                            continue
                        self.findings.append(Finding(
                            fn.file, t.line, "bounded-decode",
                            f"{fn.qual} calls {body[i-2].text}."
                            f"{t.text}({v}) with a wire-read count never "
                            "checked against remaining input: a tiny "
                            "frame can demand an arbitrary allocation "
                            "(use Reader::length_prefix)"))

            # (b) raw buffer access must sit under a size comparison
            wire_bufs = set()
            for prm in fn.params:
                if base_type(prm.type) in ("BytesView", "Bytes") and prm.name:
                    wire_bufs.add(prm.name)
            if fn.cls and fn.cls in self.p.records:
                for f_ in self.p.records[fn.cls].fields.values():
                    if base_type(f_.type) in ("Bytes", "BytesView") or \
                            "vector < std :: uint8_t" in f_.type or \
                            "vector<std::uint8_t" in f_.type.replace(" ", ""):
                        wire_bufs.add(f_.name)
            if not wire_bufs:
                continue

            def size_check_before(buf: str, idx: int) -> bool:
                for (s, e) in cond_spans:
                    if s > idx:
                        continue
                    span = texts[s:e]
                    if buf in span and any(x in ("size", "remaining", "empty")
                                           for x in span):
                        return True
                return False

            for i, t in enumerate(body):
                hit = None
                if t.text == "[" and i >= 1 and body[i - 1].kind == "id" \
                        and body[i - 1].text in wire_bufs:
                    hit = body[i - 1].text
                elif t.text == "data" and i >= 2 and \
                        body[i - 1].text in (".", "->") and \
                        body[i - 2].text in wire_bufs and \
                        i + 2 < len(body) and body[i + 1].text == "(" and \
                        body[i + 3].text in ("+", "-"):
                    hit = body[i - 2].text
                if hit is None:
                    continue
                if size_check_before(hit, i):
                    continue
                if self.allow.allowed("bounded-decode", fn.qual, fn.file):
                    continue
                self.findings.append(Finding(
                    fn.file, t.line, "bounded-decode",
                    f"{fn.qual} indexes wire buffer `{hit}` without a "
                    "dominating size check: out-of-bounds read on "
                    "adversarial input"))

    # ==================================================================
    # Checker 4: wire-schema
    # ==================================================================

    OP_NORMALIZE = {"i64": "u64", "string": "bytes", "boolean": "u8",
                    "u8": "u8", "u16": "u16", "u32": "u32", "u64": "u64",
                    "varint": "varint", "raw": "raw", "bytes": "bytes",
                    "length_prefix": "varint"}

    def extract_ops(self, fn: Func, direction: str,
                    depth: int = 0) -> list:
        """Op sequence of an encode/decode body.

        Ops: "u8"|"u16"|...|"raw"|"bytes"|"varint",
             ["rec", TypeName], ["loop", [ops...]]
        """
        if depth > 6:
            return []
        if direction == "encode":
            cursors = self.writer_vars(fn)
        else:
            cursors = self.reader_vars(fn)
        top_scope = self.func_scope_types(fn)

        def walk(body: list[Tok], scope: dict[str, str]) -> list:
            ops: list = []
            loops = []
            for decl, expr, bslice, hdr in range_for_loops(body):
                loops.append((hdr, bslice, decl, expr))
            for cond, bslice, hdr in classic_for_loops(body):
                loops.append((hdr, bslice, None, None))
            loops.sort(key=lambda x: x[0])
            li = 0
            calls = iter_calls(body)
            ci = 0
            i = 0
            while i < len(body):
                if li < len(loops) and loops[li][0] == i:
                    hdr, bslice, decl, expr = loops[li]
                    inner_scope = scope
                    if decl is not None and expr is not None:
                        # type the loop variable from the container's
                        # element type so `v.encode(w)` resolves inside
                        inner_scope = dict(scope)
                        lv = next((t.text for t in reversed(decl)
                                   if t.kind == "id" and
                                   t.text not in ("auto", "const")), None)
                        et = self._expr_elem_type(expr, fn, scope)
                        if lv and et:
                            inner_scope[lv] = et
                    inner = walk(bslice[1:-1] if bslice and
                                 bslice[0].text == "{" else bslice,
                                 inner_scope)
                    if inner:
                        ops.append(["loop", inner])
                    # skip past the loop body
                    end_idx = hdr
                    last = bslice[-1] if bslice else None
                    if last is not None:
                        for j in range(hdr, len(body)):
                            if body[j] is last:
                                end_idx = j
                                break
                    # drop calls consumed inside the loop
                    while ci < len(calls) and calls[ci].idx <= end_idx:
                        ci += 1
                    li += 1
                    while li < len(loops) and loops[li][0] <= end_idx:
                        li += 1
                    i = end_idx + 1
                    continue
                while ci < len(calls) and calls[ci].idx < i:
                    ci += 1
                if ci < len(calls) and calls[ci].idx == i:
                    call = calls[ci]
                    op = self._call_op(call, fn, cursors, scope, direction,
                                       depth)
                    if op is not None:
                        if isinstance(op, list) and op and op[0] == "splice":
                            ops.extend(op[1])
                        else:
                            ops.append(op)
                        ci += 1
                        i = call.close + 1
                        continue
                    ci += 1
                i += 1
            return ops

        inner = fn.body[1:-1] if fn.body and fn.body[0].text == "{" \
            else fn.body
        return walk(inner, top_scope)

    def _expr_elem_type(self, expr: list[Tok], fn: Func,
                        scope: dict[str, str]) -> str | None:
        """Element type name of a range-for container expression."""
        ids = [t.text for t in expr if t.kind == "id"]
        if not ids:
            return None
        tstr: str | None = None
        if len(ids) == 1:
            tstr = scope.get(ids[0])
        else:
            first = ids[0]
            if first == "this":
                cur: str | None = fn.cls
                rest = ids[1:]
            elif first in scope:
                cur = base_type(scope[first])
                rest = ids[1:]
            else:
                return None
            for part in rest:
                rec = self.p.records.get(cur or "")
                if rec is None or part not in rec.fields:
                    return None
                tstr = rec.fields[part].type
                cur = base_type(tstr)
        if tstr is None:
            return None
        return element_type(tstr)

    def _call_op(self, call: Call, fn: Func, cursors: set[str],
                 scope: dict[str, str], direction: str, depth: int):
        # cursor primitive: w.u32(...) / r.u32()
        if call.recv and call.recv[-1] in cursors:
            if call.name in self.OP_NORMALIZE:
                return self.OP_NORMALIZE[call.name]
            return None
        # record codec: X::decode(r) / x.encode(w) / X::deserialize(r)
        if direction == "decode":
            if call.name in ("decode", "deserialize") and len(call.path) >= 2:
                rec = call.path[-2]
                if rec in self.p.records:
                    return ["rec", rec]
            # helper taking the reader: splice (read_hash(r) etc.)
            passes_cursor = any(len(a) == 1 and a[0].text in cursors
                                for a in call.args)
            if passes_cursor:
                for tgt in self.resolve_call_targets(call, fn, scope):
                    if tgt.cls is None and tgt.name not in ("decode",):
                        sub = self.extract_ops(tgt, "decode", depth + 1)
                        return ["splice", sub]
            return None
        # encode side
        if call.name in ("encode", "serialize") and call.recv:
            rt = self.resolve_chain_type(call.recv, fn, scope)
            if rt and rt in self.p.records:
                return ["rec", rt]
            if call.recv[-1] in scope:
                et = element_type(scope[call.recv[-1]])
                if et and et in self.p.records:
                    return ["rec", et]
            return None
        passes_cursor = any(len(a) == 1 and a[0].text in cursors
                            for a in call.args)
        if passes_cursor and call.name not in ("encode", "serialize"):
            for tgt in self.resolve_call_targets(call, fn, scope):
                if tgt.cls is None or tgt.cls == fn.cls:
                    sub = self.extract_ops(tgt, "encode", depth + 1)
                    if sub:
                        return ["splice", sub]
        return None

    def wire_functions(self) -> dict[str, dict[str, Func]]:
        """record/free-fn name -> {"encode": Func, "decode": Func}."""
        out: dict[str, dict[str, Func]] = {}
        for fn in self.p.funcs:
            posix = fn.file.replace("\\", "/")
            if posix.endswith(TRUSTED_CORE_FILES):
                continue
            is_enc = bool(ENCODE_NAMES.match(fn.name))
            is_dec = bool(DECODE_NAMES.match(fn.name))
            if not (is_enc or is_dec):
                continue
            if fn.cls:
                if fn.name in ("encode", "serialize", "decode",
                               "deserialize"):
                    key = fn.cls
                else:
                    # encode_pofs-style statics are rare; treat as free
                    key = fn.name
            else:
                # free encode_X / decode_X pair on the suffix
                m = re.match(r"^(encode|decode)_(\w+)$", fn.name)
                key = m.group(2) if m else fn.name
            slot = "encode" if is_enc else "decode"
            out.setdefault(key, {})
            # keep the first definition (headers may duplicate via
            # inline defs; identical anyway)
            out[key].setdefault(slot, fn)
        return out

    @classmethod
    def normalize_ops(cls, ops: list) -> list:
        out = []
        for op in ops:
            if isinstance(op, str):
                out.append(cls.OP_NORMALIZE.get(op, op))
            elif op[0] == "loop":
                inner = cls.normalize_ops(op[1])
                if inner:
                    out.append(["loop", inner])
            elif op[0] == "rec":
                out.append(["rec", op[1]])
        return out

    def extract_schema(self) -> dict:
        schema: dict[str, dict] = {}
        for key, slots in sorted(self.wire_functions().items()):
            entry = {}
            for slot, fn in sorted(slots.items()):
                ops = self.normalize_ops(self.extract_ops(fn, slot))
                if ops:
                    entry[slot] = ops
            if entry:
                schema[key] = entry
        tags = self.extract_msg_tags()
        return {"records": schema, "message_tags": tags}

    def extract_msg_tags(self) -> dict[str, int]:
        # MsgTag enum: parse from any file's tokens — we kept enums out
        # of the model, so re-scan the raw text of messages.hpp.
        tags: dict[str, int] = {}
        for fn in self.p.funcs:
            pass
        for path, text in getattr(self, "_raw_files", {}).items():
            m = re.search(r"enum\s+class\s+MsgTag[^{]*\{(.*?)\}", text,
                          re.S)
            if not m:
                continue
            body = re.sub(r"//[^\n]*|/\*.*?\*/", "", m.group(1), flags=re.S)
            value = 0
            for part in body.split(","):
                part = part.strip()
                if not part:
                    continue
                if "=" in part:
                    name, _, val = part.partition("=")
                    try:
                        value = int(val.strip(), 0)
                    except ValueError:
                        continue
                    tags[name.strip()] = value
                else:
                    value += 1
                    tags[part] = value
        return tags

    def check_wire_schema(self, golden_path: Path | None,
                          write_golden: bool,
                          out_schema: Path | None) -> dict:
        schema = self.extract_schema()
        # symmetry per record
        for key, entry in sorted(schema["records"].items()):
            enc, dec = entry.get("encode"), entry.get("decode")
            wf = self.wire_functions().get(key, {})
            where = wf.get("encode") or wf.get("decode")
            file = where.file if where else "<schema>"
            line = where.line if where else 0
            if enc is None or dec is None:
                missing = "decode" if dec is None else "encode"
                present = enc if dec is None else dec
                if self._envelope_ok(present, schema["records"]):
                    # Tag-dispatch envelope: every byte it moves is a
                    # record whose own codec pair is symmetric; the
                    # missing half IS that record's other codec, reached
                    # through the frame dispatcher.
                    continue
                if self.allow.allowed("wire-schema", key, file):
                    continue
                self.findings.append(Finding(
                    file, line, "wire-schema",
                    f"{key} has an {'encode' if dec is None else 'decode'} "
                    f"side but no extractable {missing} counterpart: the "
                    "two halves of the wire format can drift unreviewed"))
                continue
            if enc != dec:
                if self.allow.allowed("wire-schema", key, file):
                    continue
                self.findings.append(Finding(
                    file, line, "wire-schema",
                    f"{key}: encode writes {self.fmt_ops(enc)} but decode "
                    f"reads {self.fmt_ops(dec)} — field-level asymmetry "
                    "(width, order or count) between the two wire halves"))
        if out_schema is not None:
            out_schema.parent.mkdir(parents=True, exist_ok=True)
            out_schema.write_text(json.dumps(schema, indent=1,
                                             sort_keys=True) + "\n")
        if golden_path is not None:
            if write_golden:
                golden_path.write_text(json.dumps(schema, indent=1,
                                                  sort_keys=True) + "\n")
            elif golden_path.exists():
                golden = json.loads(golden_path.read_text())
                self.diff_schema(golden, schema, golden_path)
            else:
                self.findings.append(Finding(
                    str(golden_path), 0, "wire-schema",
                    "golden schema missing — run with --write-golden and "
                    "commit the result"))
        return schema

    @staticmethod
    def _envelope_ok(ops: list, records: dict) -> bool:
        """True when a one-sided codec moves only symmetric records
        (so its other half is the record codec behind tag dispatch)."""
        recs = [op for op in ops if isinstance(op, list) and op[0] == "rec"]
        if not recs or len(recs) != len(ops):
            return False
        for _, rname in recs:
            entry = records.get(rname, {})
            if "encode" not in entry or "decode" not in entry or \
                    entry["encode"] != entry["decode"]:
                return False
        return True

    def diff_schema(self, golden: dict, schema: dict,
                    golden_path: Path) -> None:
        grec = golden.get("records", {})
        srec = schema.get("records", {})
        for key in sorted(set(grec) | set(srec)):
            if key not in srec:
                self.findings.append(Finding(
                    str(golden_path), 0, "wire-schema",
                    f"{key} present in the golden schema but no longer "
                    "extractable from the sources (message deleted or "
                    "encoder moved?) — regenerate the golden if "
                    "intentional (--write-golden)"))
            elif key not in grec:
                self.findings.append(Finding(
                    str(golden_path), 0, "wire-schema",
                    f"{key} is a NEW wire record not in the golden schema "
                    "— review the format and regenerate the golden "
                    "(--write-golden)"))
            elif grec[key] != srec[key]:
                self.findings.append(Finding(
                    str(golden_path), 0, "wire-schema",
                    f"{key} wire format drifted from the golden: golden "
                    f"{self.fmt_entry(grec[key])} vs source "
                    f"{self.fmt_entry(srec[key])} — wire format changes "
                    "must be explicit (--write-golden + review)"))
        if golden.get("message_tags") != schema.get("message_tags"):
            self.findings.append(Finding(
                str(golden_path), 0, "wire-schema",
                "MsgTag numbering drifted from the golden schema"))

    @classmethod
    def fmt_ops(cls, ops: list) -> str:
        parts = []
        for op in ops:
            if isinstance(op, str):
                parts.append(op)
            elif op[0] == "loop":
                parts.append("loop[" + cls.fmt_ops(op[1]) + "]")
            elif op[0] == "rec":
                parts.append(op[1])
        return " ".join(parts)

    @classmethod
    def fmt_entry(cls, entry: dict) -> str:
        return "{" + ", ".join(
            f"{slot}: {cls.fmt_ops(ops)}" for slot, ops in
            sorted(entry.items())) + "}"

    # ==================================================================
    # Checker 5: lock-blocking
    # ==================================================================

    def may_block_map(self) -> dict[str, bool]:
        may: dict[str, bool] = {}
        for fn in self.p.funcs:
            direct = False
            for call in iter_calls(fn.body):
                if call.name in BLOCKING_LEAVES:
                    direct = True
                    break
            for t in fn.body:
                if t.kind == "id" and t.text in ("ofstream", "ifstream",
                                                 "fstream"):
                    direct = True
                    break
            may[fn.qual] = direct
        for _ in range(6):
            changed = False
            for fn in self.p.funcs:
                if may[fn.qual]:
                    continue
                scope = self.func_scope_types(fn)
                for call in iter_calls(fn.body):
                    for tgt in self.resolve_call_targets(call, fn, scope):
                        if may.get(tgt.qual):
                            may[fn.qual] = True
                            changed = True
                            break
                    if may[fn.qual]:
                        break
            if not changed:
                break
        return may

    def check_lock_blocking(self) -> None:
        may = self.may_block_map()
        alias = self.build_lock_aliases()
        for fn in self.p.funcs:
            posix = fn.file.replace("\\", "/")
            if posix.endswith(TRUSTED_CORE_FILES):
                continue
            scope = self.func_scope_types(fn)
            for e in self.function_acquisitions(fn, alias):
                if e[0] != "call":
                    continue
                call, held = e[1], e[2]
                blocking_tgt = None
                if call.name in BLOCKING_LEAVES:
                    blocking_tgt = call.name
                else:
                    for tgt in self.resolve_call_targets(call, fn, scope):
                        if may.get(tgt.qual):
                            blocking_tgt = tgt.qual
                            break
                if blocking_tgt is None:
                    continue
                if self.allow.allowed("lock-blocking", fn.qual, fn.file,
                                      *held):
                    continue
                self.findings.append(Finding(
                    fn.file, call.line, "lock-blocking",
                    f"{fn.qual} reaches blocking call {blocking_tgt} "
                    f"while holding {', '.join(sorted(set(held)))} "
                    "(found through the call graph): every thread "
                    "contending on that lock stalls on the I/O"))
            # throwing calls between manual lock()/unlock()
            self._check_manual_lock_throw(fn, alias, scope)

    def _check_manual_lock_throw(self, fn: Func, alias: dict[str, str],
                                 scope: dict[str, str]) -> None:
        body = fn.body
        open_locks: list[tuple[str, int]] = []
        for i, t in enumerate(body):
            if t.text in ("lock", "unlock") and i >= 2 and \
                    body[i - 1].text in (".", "->") and \
                    i + 1 < len(body) and body[i + 1].text == "(" and \
                    body[i + 2].text == ")":
                lock = self.lock_id(body[i - 2].text, fn, scope, alias)
                if lock is None:
                    continue
                if t.text == "lock":
                    open_locks.append((lock, i))
                else:
                    open_locks = [(l, k) for (l, k) in open_locks
                                  if l != lock]
                continue
            if t.text == "throw" and open_locks:
                if self.allow.allowed("lock-blocking", fn.qual, fn.file):
                    continue
                self.findings.append(Finding(
                    fn.file, t.line, "lock-blocking",
                    f"{fn.qual} may throw between manual "
                    f"{open_locks[-1][0]}.lock() and .unlock(): the lock "
                    "leaks on the exception path (use MutexLock RAII)"))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

CHECKERS = ("lock-order", "epoch-taint", "bounded-decode", "wire-schema",
            "lock-blocking")


def collect_files(roots: list[str]) -> dict[Path, str]:
    files: dict[Path, str] = {}
    for root in roots:
        rp = Path(root)
        if rp.is_file():
            files[rp] = rp.read_text(errors="replace")
            continue
        if not rp.is_dir():
            raise SystemExit(f"zlb_analyze: no such directory: {root}")
        for path in sorted(rp.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                files[path] = path.read_text(errors="replace")
    return files


def build_program(files: dict[Path, str], frontend: str,
                  compdb: str | None) -> Program:
    if frontend in ("clang", "auto"):
        try:
            from clang_frontend import load_clang_frontend  # noqa: PLC0415
            return load_clang_frontend(files, compdb)
        except Exception as exc:  # noqa: BLE001 - degrade gracefully
            if frontend == "clang":
                raise SystemExit(
                    f"zlb_analyze: clang frontend unavailable: {exc}")
            print(f"zlb_analyze: clang frontend unavailable ({exc}); "
                  "falling back to the pure-Python parser", file=sys.stderr)
    return load_python_frontend(files)


def main(argv: list[str] | None = None) -> int:
    here = Path(__file__).resolve().parent
    sys.path.insert(0, str(here))
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", action="append", required=True,
                    help="directory tree (or single file) to analyze "
                         "(repeatable)")
    ap.add_argument("--allow", type=Path, default=None,
                    help="allowlist file (checker:token lines)")
    ap.add_argument("--checker", action="append", default=None,
                    help=f"run only these checkers (default: all of "
                         f"{', '.join(CHECKERS)})")
    ap.add_argument("--frontend", choices=("auto", "clang", "python"),
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="directory containing compile_commands.json "
                         "(clang frontend)")
    ap.add_argument("--schema-golden", type=Path, default=None,
                    help="golden wire schema JSON to diff against")
    ap.add_argument("--write-golden", action="store_true",
                    help="regenerate the golden schema instead of diffing")
    ap.add_argument("--emit-schema", type=Path, default=None,
                    help="also write the extracted schema here (CI artifact)")
    ap.add_argument("--json", type=Path, default=None,
                    help="write findings as JSON here (CI artifact)")
    ap.add_argument("--warn-unused-allow", action="store_true",
                    help="fail when allowlist entries go unused")
    args = ap.parse_args(argv)

    selected = args.checker or list(CHECKERS)
    unknown = [c for c in selected if c not in CHECKERS]
    if unknown:
        print(f"zlb_analyze: unknown checker(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    files = collect_files(args.root)
    program = build_program(files, args.frontend, args.compdb)
    allow = Allowlist(args.allow)
    az = Analyzer(program, allow)
    az._raw_files = {p: t for p, t in files.items()}  # for enum extraction

    if "lock-order" in selected:
        az.check_lock_order()
    if "epoch-taint" in selected:
        az.check_epoch_taint()
    if "bounded-decode" in selected:
        az.check_bounded_decode()
    if "wire-schema" in selected:
        az.check_wire_schema(args.schema_golden, args.write_golden,
                             args.emit_schema)
    if "lock-blocking" in selected:
        az.check_lock_blocking()

    for f in sorted(az.findings, key=lambda x: (x.file, x.line, x.checker)):
        print(f)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(
            {"frontend": program.frontend,
             "findings": [f.as_json() for f in az.findings]},
            indent=1, sort_keys=True) + "\n")
    unused = allow.unused()
    if unused and args.warn_unused_allow:
        for checker, tok in unused:
            print(f"zlb_analyze: unused allowlist entry {checker}:{tok}",
                  file=sys.stderr)
        if not az.findings:
            return 1
    if az.findings:
        print(f"zlb_analyze: {len(az.findings)} finding(s) "
              f"[frontend={program.frontend}]", file=sys.stderr)
    return 1 if az.findings else 0


if __name__ == "__main__":
    sys.exit(main())
