"""libclang frontend for zlb_analyze.

Builds the same ``Program`` model as the pure-Python frontend, but from
the real clang AST via the ``clang.cindex`` bindings and (optionally) a
compilation database, so macro expansion, template instantiation and
overload resolution are exact. Imported lazily by zlb_analyze; any
import/availability failure makes ``--frontend auto`` fall back to the
pure-Python parser, so this module must never be required for a green
run.

The checker core consumes token streams for function bodies (statement-
level scans), so this frontend re-tokenizes each body extent with the
shared tokenizer — the win over the pure parser is in the *model*:
exact record fields/types, exact function boundaries, and annotation
attributes straight from the AST instead of heuristic recovery.
"""

from __future__ import annotations

import json
from pathlib import Path

from clang import cindex  # raises ImportError when bindings are absent

from zlb_analyze import Field_, Func, Program, Record, tokenize


def _ensure_library() -> None:
    """Probe that libclang itself loads, not just the bindings."""
    try:
        cindex.Config().get_cindex_library()
    except Exception as exc:  # noqa: BLE001
        raise ImportError(f"libclang shared library unavailable: {exc}")


_ANN_PREFIXES = ("REQUIRES", "EXCLUDES", "ACQUIRE", "RELEASE",
                 "SCOPED_CAPABILITY", "GUARDED_BY")


def _annotations(cursor) -> list[str]:
    anns = []
    for child in cursor.get_children():
        if child.kind == cindex.CursorKind.ANNOTATE_ATTR:
            anns.append(child.displayname)
        # Thread-safety attributes surface as Unexposed/other attrs whose
        # spelling carries the macro text in recent libclang versions.
        elif child.kind.is_attribute():
            sp = child.displayname or ""
            if sp.startswith(_ANN_PREFIXES):
                anns.append(sp)
    return anns


def _body_tokens(tu, cursor):
    ext = cursor.extent
    # Locate the compound statement child (the body) and slice its text.
    body = None
    for child in cursor.get_children():
        if child.kind == cindex.CursorKind.COMPOUND_STMT:
            body = child
    if body is None:
        return None
    src = Path(str(ext.start.file)).read_text(errors="replace")
    start, end = body.extent.start.offset, body.extent.end.offset
    text = src[start:end]
    toks = tokenize(text)
    line_base = body.extent.start.line - 1
    for t in toks:
        t.line += line_base
    return toks


def _walk(tu, cursor, program: Program, cls: str | None,
          wanted: set[str]) -> None:
    for child in cursor.get_children():
        loc = child.location
        if loc.file is None or str(loc.file) not in wanted:
            continue
        k = child.kind
        if k in (cindex.CursorKind.NAMESPACE,
                 cindex.CursorKind.LINKAGE_SPEC):
            _walk(tu, child, program, cls, wanted)
        elif k in (cindex.CursorKind.STRUCT_DECL,
                   cindex.CursorKind.CLASS_DECL):
            name = child.spelling
            if not name or not child.is_definition():
                _walk(tu, child, program, cls, wanted)
                continue
            rec = program.records.setdefault(
                name, Record(name=name, qual=name, file=str(loc.file),
                             line=loc.line))
            for m in child.get_children():
                if m.kind == cindex.CursorKind.FIELD_DECL:
                    rec.fields[m.spelling] = Field_(
                        type=m.type.spelling, name=m.spelling)
                elif m.kind in (cindex.CursorKind.CXX_METHOD,
                                cindex.CursorKind.CONSTRUCTOR) and \
                        not m.is_definition():
                    anns = _annotations(m)
                    if anns:
                        program.method_decl_annotations.setdefault(
                            f"{name}::{m.spelling}", []).extend(anns)
            _walk(tu, child, program, name, wanted)
        elif k in (cindex.CursorKind.FUNCTION_DECL,
                   cindex.CursorKind.CXX_METHOD,
                   cindex.CursorKind.CONSTRUCTOR,
                   cindex.CursorKind.FUNCTION_TEMPLATE):
            if not child.is_definition():
                continue
            body = _body_tokens(tu, child)
            if body is None:
                continue
            owner = cls
            sem = child.semantic_parent
            if sem is not None and sem.kind in (
                    cindex.CursorKind.STRUCT_DECL,
                    cindex.CursorKind.CLASS_DECL):
                owner = sem.spelling
            params = [Field_(type=a.type.spelling, name=a.spelling)
                      for a in child.get_arguments()]
            init_bindings: dict[str, str] = {}
            if child.kind == cindex.CursorKind.CONSTRUCTOR:
                for init in child.get_children():
                    if init.kind == cindex.CursorKind.MEMBER_REF:
                        # member-ref followed by its init expression
                        pass
            name = child.spelling
            program.funcs.append(Func(
                name=name, cls=owner,
                qual=f"{owner}::{name}" if owner else name,
                params=params, body=body, file=str(loc.file),
                line=loc.line, annotations=_annotations(child),
                init_bindings=init_bindings))


def load_clang_frontend(files: dict[Path, str],
                        compdb_dir: str | None) -> Program:
    _ensure_library()
    index = cindex.Index.create()
    program = Program()
    wanted = {str(p.resolve()) for p in files} | {str(p) for p in files}

    args_by_file: dict[str, list[str]] = {}
    if compdb_dir:
        db_path = Path(compdb_dir) / "compile_commands.json"
        if db_path.exists():
            for entry in json.loads(db_path.read_text()):
                cmd = entry.get("arguments") or entry.get("command", "").split()
                args = [a for a in cmd[1:]
                        if a.startswith(("-I", "-D", "-std", "-isystem"))]
                args_by_file[str(Path(entry["directory"], entry["file"])
                                 .resolve())] = args
    default_args = ["-std=c++20", "-Isrc", "-xc++"]

    parsed: set[str] = set()
    for path in sorted(files):
        if path.suffix not in (".cpp", ".cc", ".cxx"):
            continue
        resolved = str(path.resolve())
        args = args_by_file.get(resolved, default_args)
        tu = index.parse(str(path), args=args)
        _walk(tu, tu.cursor, program, None, wanted)
        parsed.add(resolved)
        for inc in tu.get_includes():
            parsed.add(str(Path(str(inc.include)).resolve()))
    # Headers never reached through a TU (header-only trees): parse alone.
    for path in sorted(files):
        if str(path.resolve()) in parsed or path.suffix in \
                (".cpp", ".cc", ".cxx"):
            continue
        tu = index.parse(str(path), args=default_args)
        _walk(tu, tu.cursor, program, None, wanted)

    # Deduplicate functions parsed through several TUs (same qual+file+line).
    seen: set[tuple[str, str, int]] = set()
    uniq: list[Func] = []
    for fn in program.funcs:
        key = (fn.qual, fn.file, fn.line)
        if key in seen:
            continue
        seen.add(key)
        uniq.append(fn)
    program.funcs = uniq
    program.index()
    program.frontend = "clang"
    return program
