// zlb_analyze fixture: MUST keep failing the bounded-decode checker.
// The element count comes straight off the wire and sizes a reserve()
// without ever being compared against the remaining input: a 3-byte
// frame can demand a multi-gigabyte allocation. The encode half exists
// and is symmetric so only bounded-decode fires.
#include <vector>

#include "common/serde.hpp"

namespace fx {

void encode_entries(zlb::Writer& w, const std::vector<std::uint32_t>& v) {
  w.varint(v.size());
  for (std::uint32_t x : v) w.u32(x);
}

std::vector<std::uint32_t> decode_entries(zlb::Reader& r) {
  const std::uint64_t n = r.varint();  // BUG: never checked vs remaining()
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.u32());
  return out;
}

}  // namespace fx
