// zlb_analyze fixture: MUST keep failing the wire-schema checker.
// Encode writes (u32 a, u64 b) but decode reads them in the opposite
// order — a field-level asymmetry the old name-pairing regex (which
// only checked that encode_x had a decode_x) could never notice.
#include "common/serde.hpp"

namespace fx {

struct Pointer {
  std::uint32_t a = 0;
  std::uint64_t b = 0;

  void encode(zlb::Writer& w) const;
  static Pointer decode(zlb::Reader& r);
};

void Pointer::encode(zlb::Writer& w) const {
  w.u32(a);
  w.u64(b);
}

Pointer Pointer::decode(zlb::Reader& r) {
  Pointer p;
  p.b = r.u64();  // BUG: order swapped relative to encode
  p.a = r.u32();
  return p;
}

}  // namespace fx
