// zlb_analyze fixture: MUST keep failing the lock-order checker.
// Two mutexes acquired in opposite orders, with both second
// acquisitions hidden behind a helper call — the cycle only exists
// interprocedurally, which is exactly what per-TU -Wthread-safety and
// the old regex linter cannot see.
#include "common/mutex.hpp"

namespace fx {

class Pair {
 public:
  void ab();
  void ba();

 private:
  void take_b();
  void take_a();

  zlb::common::Mutex a_;
  zlb::common::Mutex b_;
};

void Pair::ab() {
  const zlb::common::MutexLock la(a_);
  take_b();  // acquires b_ while a_ is held: edge a_ -> b_
}

void Pair::take_b() {
  const zlb::common::MutexLock lb(b_);
}

void Pair::ba() {
  const zlb::common::MutexLock lb(b_);
  take_a();  // acquires a_ while b_ is held: edge b_ -> a_ — cycle
}

void Pair::take_a() {
  const zlb::common::MutexLock la(a_);
}

}  // namespace fx
