// zlb_analyze fixture: MUST keep failing the epoch-taint checker.
// The signing bytes are produced through a helper that writes every
// field EXCEPT the epoch — the signature verifies under any membership
// generation, i.e. a cross-epoch replay. The helper indirection is the
// point: the old regex rule only scanned the signing_bytes body itself.
#include "common/serde.hpp"

namespace fx {

struct Ballot {
  std::uint32_t epoch = 0;
  std::uint32_t slot = 0;
  std::uint8_t value = 0;

  [[nodiscard]] zlb::Bytes signing_bytes() const;

 private:
  void write_core(zlb::Writer& w) const;
};

void Ballot::write_core(zlb::Writer& w) const {
  w.u32(slot);
  w.u8(value);
  // BUG: epoch is never bound anywhere on this path.
}

zlb::Bytes Ballot::signing_bytes() const {
  zlb::Writer w;
  w.string("fx-ballot");
  write_core(w);
  return w.take();
}

}  // namespace fx
