// zlb_analyze fixture: MUST keep failing the lock-blocking checker.
// The blocking file I/O sits two helper calls below the locked scope,
// so a lexical "I/O spelled inside the lock scope" rule sees nothing —
// only call-graph propagation of may-block reaches it.
#include <cstdio>

#include "common/mutex.hpp"

namespace fx {

class Store {
 public:
  void save();

 private:
  void persist();
  void write_out();

  zlb::common::Mutex mu_;
};

void Store::save() {
  const zlb::common::MutexLock lock(mu_);
  persist();  // BUG: reaches fopen/fflush/fclose while mu_ is held
}

void Store::persist() { write_out(); }

void Store::write_out() {
  std::FILE* f = std::fopen("/tmp/fx-store", "wb");
  if (f != nullptr) {
    std::fflush(f);
    std::fclose(f);
  }
}

}  // namespace fx
